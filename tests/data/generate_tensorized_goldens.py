"""Regenerate the pinned tensorized-evaluation goldens.

``tensorized_goldens.json`` freezes, for every shipped platform (plus
one non-reference ``dac2020-scaled`` parameterization), a slice of the
full-space tensor at 16 evenly-spaced config indices:

* ``area_hex``    — ``float.hex()`` of ``TensorizedSpace.area_mm2``,
* ``valid``       — the validity mask bits, and
* ``latency_hex`` — ``float.hex()`` of the ResNet-cell latency row,

all computed hermetically (no disk cache).  The differential suite
compares live tensors against these strings bit-for-bit, so lockstep
drift — an analytical-model change that moves the tensorized path and
the scalar path together, which the tensor==scalar differential tests
cannot see — fails loudly instead of silently rewriting history.

Do not regenerate casually: new goldens only prove self-consistency of
the current code.  Regenerate ONLY after an intentional hardware-model
change, and say so in the commit message.

Run:  PYTHONPATH=src python tests/data/generate_tensorized_goldens.py
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.hw import build_platform, list_platforms
from repro.hw.tensorized import TensorizedSpace, enumerable
from repro.nasbench.compile import compile_cell_ops
from repro.nasbench.known_cells import resnet_cell
from repro.nasbench.skeleton import CIFAR10_SKELETON

HERE = Path(__file__).resolve().parent

NUM_INDICES = 16

#: Platform label -> (registry name, params).  Covers every shipped
#: platform at defaults plus one scaled variant with non-default
#: params, whose namespace (and therefore tensor) differs from the
#: reference model.
PLATFORM_BUILDS: dict[str, tuple[str, dict]] = {
    # surrogate:* platforms are excluded: their drift guard is the fit
    # artifact's probe contract, not pinned tensor slices.
    **{
        name: (name, {})
        for name in list_platforms()
        if not name.startswith("surrogate:")
    },
    "dac2020-scaled@300MHz": ("dac2020-scaled", {"clock_mhz": 300.0}),
}


def pinned_indices(size: int) -> list[int]:
    """Sixteen evenly-spaced indices across the full config space."""
    return sorted(set(np.linspace(0, size - 1, NUM_INDICES).astype(int).tolist()))


def main() -> None:
    resnet_ir = compile_cell_ops(resnet_cell(), CIFAR10_SKELETON)
    goldens: dict[str, dict] = {}
    for label, (name, params) in PLATFORM_BUILDS.items():
        platform = build_platform(name, params or None)
        if enumerable(platform):
            tensor = TensorizedSpace(platform, use_disk_cache=False)
            size = tensor.size
            indices = pinned_indices(size)
            area = tensor.area_mm2
            valid = tensor.valid
            latency = tensor.latency_row("resnet", lambda: resnet_ir)
            tensorized = True
        else:
            # Non-enumerable spaces (charm-u50) have no tensor; pin the
            # batched column queries at the same probe indices instead —
            # the lockstep-drift guard matters just as much there.
            space = platform.config_space()
            size = space.size
            indices = pinned_indices(size)
            cols = space.columns_at(np.asarray(indices, dtype=np.int64))
            area = platform.batch_area_mm2(cols)
            valid = platform.batch_config_valid(cols)
            latency = platform.batch_network_latency_s(resnet_ir, cols)
            indices_map = {index: pos for pos, index in enumerate(indices)}
            area = {i: area[indices_map[i]] for i in indices}
            valid = {i: valid[indices_map[i]] for i in indices}
            latency = {i: latency[indices_map[i]] for i in indices}
            tensorized = False
        goldens[label] = {
            "platform": name,
            "params": params,
            "namespace": platform.cache_namespace(),
            "size": size,
            "tensorized": tensorized,
            "indices": indices,
            "area_hex": [float(area[i]).hex() for i in indices],
            "valid": [bool(valid[i]) for i in indices],
            "latency_hex": [float(latency[i]).hex() for i in indices],
        }
        print(f"{label}: size={size} indices={len(indices)} "
              f"tensorized={tensorized}")
    (HERE / "tensorized_goldens.json").write_text(
        json.dumps(goldens, indent=2) + "\n"
    )
    print(f"wrote {len(goldens)} platform slices")


if __name__ == "__main__":
    main()
