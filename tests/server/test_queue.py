"""Tests for the ledger-backed study queue.

Two layers: the :class:`RunLedger` queue primitives (every transition
one committed transaction, lease semantics under explicit clocks) and
the :class:`StudyQueue` wrapper (validation, state layout, cache
sharding).  The worker pool and HTTP surface are covered end to end
in ``test_server_e2e.py``.
"""

from __future__ import annotations

import pytest

from repro.core.study import StudyError, StudySpec
from repro.experiments.presets import resolve_spec
from repro.parallel.ledger import (
    STUDY_STATES,
    TERMINAL_STUDY_STATES,
    LedgerError,
    RunLedger,
)
from repro.server import StudyQueue


@pytest.fixture
def ledger(tmp_path) -> RunLedger:
    return RunLedger(tmp_path / "queue.sqlite")


class TestLedgerQueue:
    def test_submit_and_read_back(self, ledger):
        ledger.submit_study("st-a", {"name": "a"}, now=1.0)
        row = ledger.study("st-a")
        assert row["state"] == "queued"
        assert row["spec"] == {"name": "a"}
        assert row["submitted_at"] == 1.0
        assert row["started_at"] is None
        assert ledger.study("st-missing") is None

    def test_duplicate_submit_refused(self, ledger):
        ledger.submit_study("st-a", {}, now=1.0)
        with pytest.raises(LedgerError, match="already queued"):
            ledger.submit_study("st-a", {}, now=2.0)

    def test_claim_is_fifo_by_submission(self, ledger):
        ledger.submit_study("st-b", {}, now=2.0)
        ledger.submit_study("st-a", {}, now=1.0)
        assert ledger.claim_study(pid=7, now=3.0, stale_after=10.0) == "st-a"
        assert ledger.claim_study(pid=7, now=3.0, stale_after=10.0) == "st-b"
        assert ledger.claim_study(pid=7, now=3.0, stale_after=10.0) is None

    def test_claim_records_lease(self, ledger):
        ledger.submit_study("st-a", {}, now=1.0)
        ledger.claim_study(pid=42, now=5.0, stale_after=10.0)
        row = ledger.study("st-a")
        assert row["state"] == "running"
        assert row["lease_pid"] == 42
        assert row["heartbeat"] == 5.0
        assert row["started_at"] == 5.0

    def test_fresh_heartbeat_blocks_reclaim(self, ledger):
        ledger.submit_study("st-a", {}, now=0.0)
        ledger.claim_study(pid=1, now=0.0, stale_after=10.0)
        ledger.heartbeat_study("st-a", now=8.0)
        assert ledger.claim_study(pid=2, now=9.0, stale_after=10.0) is None

    def test_stale_heartbeat_is_reclaimed(self, ledger):
        # The crash-recovery path: a SIGKILLed server stops
        # heartbeating, and once the lease goes stale any worker may
        # re-lease the study and resume it.
        ledger.submit_study("st-a", {}, now=0.0)
        ledger.claim_study(pid=1, now=0.0, stale_after=10.0)
        assert ledger.claim_study(pid=2, now=11.0, stale_after=10.0) == "st-a"
        row = ledger.study("st-a")
        assert row["lease_pid"] == 2
        assert row["started_at"] == 0.0  # first start is preserved

    def test_heartbeat_can_repoint_lease_pid(self, ledger):
        # The server leases under its own pid, then hands the lease to
        # the runner subprocess it spawned.
        ledger.submit_study("st-a", {}, now=0.0)
        ledger.claim_study(pid=1, now=0.0, stale_after=10.0)
        ledger.heartbeat_study("st-a", now=1.0, pid=999)
        assert ledger.study("st-a")["lease_pid"] == 999

    def test_finish_round_trips_result(self, ledger):
        ledger.submit_study("st-a", {}, now=0.0)
        ledger.claim_study(pid=1, now=0.0, stale_after=10.0)
        ledger.finish_study("st-a", {"outcomes": {"s": 1}}, now=2.0)
        row = ledger.study("st-a")
        assert row["state"] == "done"
        assert row["result"] == {"outcomes": {"s": 1}}
        assert row["finished_at"] == 2.0

    def test_fail_records_error(self, ledger):
        ledger.submit_study("st-a", {}, now=0.0)
        ledger.claim_study(pid=1, now=0.0, stale_after=10.0)
        ledger.fail_study("st-a", "Traceback ...", now=2.0)
        row = ledger.study("st-a")
        assert row["state"] == "failed"
        assert row["error"] == "Traceback ..."

    def test_finish_requires_running(self, ledger):
        ledger.submit_study("st-a", {}, now=0.0)
        with pytest.raises(LedgerError, match="'queued'"):
            ledger.finish_study("st-a", {}, now=1.0)
        with pytest.raises(LedgerError, match="unknown study"):
            ledger.finish_study("st-missing", {}, now=1.0)

    def test_cancel_from_queued_and_running(self, ledger):
        ledger.submit_study("st-a", {}, now=0.0)
        ledger.submit_study("st-b", {}, now=0.0)
        ledger.claim_study(pid=1, now=0.0, stale_after=10.0)
        assert ledger.cancel_study("st-a", now=1.0) == "running"
        assert ledger.cancel_study("st-b", now=1.0) == "queued"
        assert ledger.study("st-a")["state"] == "cancelled"
        assert ledger.study("st-b")["state"] == "cancelled"

    def test_cancel_never_overwrites_a_terminal_state(self, ledger):
        ledger.submit_study("st-a", {}, now=0.0)
        ledger.claim_study(pid=1, now=0.0, stale_after=10.0)
        ledger.finish_study("st-a", {"ok": True}, now=1.0)
        assert ledger.cancel_study("st-a", now=2.0) is None
        assert ledger.study("st-a")["state"] == "done"
        assert ledger.cancel_study("st-missing", now=2.0) is None

    def test_cancelled_study_refuses_late_results(self, ledger):
        # A runner finishing after a concurrent cancel must be refused
        # — the queue's word stands.
        ledger.submit_study("st-a", {}, now=0.0)
        ledger.claim_study(pid=1, now=0.0, stale_after=10.0)
        ledger.cancel_study("st-a", now=1.0)
        with pytest.raises(LedgerError, match="'cancelled'"):
            ledger.finish_study("st-a", {"late": True}, now=2.0)

    def test_studies_lists_oldest_first(self, ledger):
        ledger.submit_study("st-b", {}, now=2.0)
        ledger.submit_study("st-a", {}, now=1.0)
        assert [row["id"] for row in ledger.studies()] == ["st-a", "st-b"]

    def test_state_constants(self):
        assert set(TERMINAL_STUDY_STATES) < set(STUDY_STATES)
        assert "running" not in TERMINAL_STUDY_STATES


class TestStudyQueue:
    def test_submit_validates_and_enqueues(self, tmp_path):
        queue = StudyQueue(tmp_path)
        with pytest.raises(StudyError, match="bogus"):
            queue.submit({"name": "x", "bogus": 1})
        study_id = queue.submit(resolve_spec("smoke").to_dict())
        assert study_id.startswith("st-")
        doc = queue.status(study_id)
        assert doc["state"] == "queued"
        assert doc["name"] == "smoke"
        assert doc["progress"] == {
            "jobs": {},
            "done_repeats": 0,
            "total_repeats": None,
            "executions": [],
        }
        assert [row["id"] for row in queue.list_studies()] == [study_id]
        assert queue.status("st-missing") is None

    def test_cancel_unknown_or_terminal_returns_none(self, tmp_path):
        queue = StudyQueue(tmp_path)
        assert queue.cancel("st-missing") is None
        study_id = queue.submit(resolve_spec("smoke").to_dict())
        assert queue.cancel(study_id) == "queued"
        assert queue.cancel(study_id) is None  # already terminal

    def test_state_layout(self, tmp_path):
        queue = StudyQueue(tmp_path)
        assert queue.queue_path == tmp_path / "queue.sqlite"
        assert queue.study_ledger_path("st-x") == (
            tmp_path / "studies" / "st-x.ledger"
        )
        assert queue.study_log_path("st-x").parent == tmp_path / "studies"
        assert queue.queue_path.exists()  # schema materialized eagerly

    def test_cache_shards_key_on_evaluation_identity(self, tmp_path):
        queue = StudyQueue(tmp_path)
        smoke = resolve_spec("smoke")
        clone = StudySpec.from_dict(smoke.to_dict())
        other_eval = smoke.with_overrides(
            {"evaluator": {"source": "surrogate", "params": {"seed": 99}}}
        )
        other_hw = smoke.with_overrides({"hardware": {"name": "embedded-lite"}})
        rescaled = smoke.with_overrides({"execution.num_steps": 7})
        assert queue.cache_shard_path(smoke) == queue.cache_shard_path(clone)
        assert queue.cache_shard_path(smoke) != queue.cache_shard_path(other_eval)
        assert queue.cache_shard_path(smoke) != queue.cache_shard_path(other_hw)
        # Execution knobs don't change evaluation identity: same shard.
        assert queue.cache_shard_path(smoke) == queue.cache_shard_path(rescaled)
        assert queue.cache_shard_path(smoke).parent == tmp_path / "cache"
