"""End-to-end tests of the study server over real HTTP.

The server runs as a real subprocess (``python -m repro serve``) on an
ephemeral port, exactly as deployed.  The durability test is the
headline: SIGKILL the runner *and* the server mid-study, prove the
queue still says ``running``, boot a fresh server on the same state
directory, and assert the resumed study's outcomes are bit-identical
to an uninterrupted in-process ``run_study`` of the same spec.

Studies are slowed to a killable pace through the server's
``--import`` plugin hook: a generated module registers a
``slow-surrogate`` accuracy source whose ``accuracy_fn`` sleeps per
evaluation — values (and therefore outcomes) are untouched.
"""

from __future__ import annotations

import importlib
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.study import StudySpec, outcome_summary, run_study
from repro.experiments.common import Scale
from repro.experiments.presets import resolve_spec
from repro.parallel.ledger import RunLedger
from repro.server import ServerError, StudyClient

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: The plugin the server imports into every runner (and the test
#: imports in-process for the comparison run).
SLOW_SOURCE_PLUGIN = '''\
"""Test plugin: the surrogate accuracy source, slowed by a fixed delay."""

import time

from repro.core.evaluator import get_accuracy_source, register_accuracy_source


def _build_slow(reward_config, params, bundle=None, store=None, platform=None):
    params = dict(params or {})
    delay_s = float(params.pop("delay_s", 0.05))
    evaluator = get_accuracy_source("surrogate").build(
        reward_config, params, bundle=bundle, store=store, platform=platform
    )
    inner = evaluator.accuracy_fn

    def slow_accuracy(spec):
        time.sleep(delay_s)
        return inner(spec)

    evaluator.accuracy_fn = slow_accuracy
    return evaluator


register_accuracy_source("slow-surrogate", _build_slow, overwrite=True)
'''


@pytest.fixture
def plugins_dir(tmp_path):
    plugins = tmp_path / "plugins"
    plugins.mkdir()
    (plugins / "slow_source.py").write_text(SLOW_SOURCE_PLUGIN)
    return plugins


def slow_spec(delay_s: float = 0.3, num_steps: int = 8) -> dict:
    """A single-job spec that takes ~delay_s * num_steps to run."""
    return {
        "name": "slow",
        "strategies": [{"name": "random", "params": {}}],
        "scenarios": ["unconstrained"],
        "evaluator": {"source": "slow-surrogate", "params": {"delay_s": delay_s}},
        "hardware": {"name": "dac2020", "params": {}},
        "execution": {
            "num_steps": num_steps,
            "num_repeats": 1,
            "checkpoint_every": 1,
        },
    }


def start_server(state_dir, plugins_dir=None, stale_after: float = 2.0):
    """Boot ``repro serve`` on an ephemeral port; returns (proc, url)."""
    env = dict(os.environ)
    paths = [SRC] + ([str(plugins_dir)] if plugins_dir is not None else [])
    if env.get("PYTHONPATH"):
        paths.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(paths)
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--state-dir", str(state_dir),
        "--port", "0",
        "--scale", "smoke",
        "--stale-after", str(stale_after),
    ]
    if plugins_dir is not None:
        cmd += ["--import", "slow_source"]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        start_new_session=True,
        text=True,
    )
    banner = proc.stdout.readline()
    assert banner.startswith("serving on "), f"server failed to boot: {banner!r}"
    return proc, banner.split()[2]


def kill_server(proc) -> None:
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    proc.wait()


def register_slow_source_locally(plugins_dir) -> None:
    """Import the plugin in-process (for the comparison run_study)."""
    sys.path.insert(0, str(plugins_dir))
    try:
        importlib.import_module("slow_source")
    finally:
        sys.path.remove(str(plugins_dir))


class TestHTTPAPI:
    def test_submit_run_and_inspect(self, tmp_path):
        proc, url = start_server(tmp_path / "state")
        try:
            client = StudyClient(url)
            assert client.health() == {"ok": True}
            spec = resolve_spec("smoke").with_overrides(
                {"execution.num_steps": 5}
            )
            submitted = client.submit(spec.to_dict())
            study_id = submitted["id"]
            assert submitted["state"] == "queued"
            doc = client.wait(study_id, timeout=120)
            assert doc["state"] == "done"
            progress = doc["progress"]
            assert progress["done_repeats"] == progress["total_repeats"] == 2
            for job in progress["jobs"].values():
                assert job["done"] == job["total"] == 1
                assert len(job["best_rewards"]) == 1
            # The served outcome summary equals a local run of the
            # same spec, float for float — serving is a transport,
            # never a result change.
            local = run_study(spec, scale=Scale.named("smoke"))
            assert doc["result"]["outcomes"] == outcome_summary(local)
            # /events replays status documents and ends terminal.
            events = list(client.events(study_id))
            assert events and events[-1]["state"] == "done"
            # Listing shows the one study, brief form.
            listed = client.studies()
            assert [row["id"] for row in listed] == [study_id]
            assert listed[0]["name"] == "smoke"
        finally:
            kill_server(proc)

    def test_error_statuses(self, tmp_path):
        proc, url = start_server(tmp_path / "state")
        try:
            client = StudyClient(url)
            # 400: the StudySpec validation message names the field.
            with pytest.raises(ServerError) as excinfo:
                client.submit({"name": "x", "bogus": 1})
            assert excinfo.value.status == 400
            assert "bogus" in str(excinfo.value)
            # 400: non-object body.
            with pytest.raises(ServerError) as excinfo:
                client._request("POST", "/studies", payload=[1, 2])
            assert excinfo.value.status == 400
            # 404: unknown study id, every route.
            for call in (
                lambda: client.status("st-missing"),
                lambda: client.cancel("st-missing"),
                lambda: list(client.events("st-missing")),
            ):
                with pytest.raises(ServerError) as excinfo:
                    call()
                assert excinfo.value.status == 404
        finally:
            kill_server(proc)

    def test_cancel_running_study(self, tmp_path, plugins_dir):
        proc, url = start_server(tmp_path / "state", plugins_dir)
        try:
            client = StudyClient(url)
            study_id = client.submit(slow_spec(delay_s=0.3, num_steps=60))["id"]
            deadline = time.monotonic() + 60
            while client.status(study_id)["state"] != "running":
                assert time.monotonic() < deadline, "study never started"
                time.sleep(0.05)
            cancelled = client.cancel(study_id)
            assert cancelled == {
                "id": study_id, "state": "cancelled", "was": "running",
            }
            final = client.wait(study_id, timeout=30)
            assert final["state"] == "cancelled"
            # 409: cancellation never overwrites a terminal state.
            with pytest.raises(ServerError) as excinfo:
                client.cancel(study_id)
            assert excinfo.value.status == 409
        finally:
            kill_server(proc)


class TestKillDurability:
    def test_sigkill_mid_study_resumes_bit_identical(self, tmp_path, plugins_dir):
        """The serving durability contract, end to end.

        SIGKILL both the runner and the server once the study has
        checkpointed real progress; the queue must still say
        ``running`` (nobody recorded a terminal state), and a fresh
        server on the same state directory must reclaim the stale
        lease and resume from the per-study ledger — finishing with
        outcomes bit-identical to an uninterrupted run of the same
        spec.
        """
        spec_dict = slow_spec(delay_s=0.4, num_steps=8)
        state = tmp_path / "state"
        proc, url = start_server(state, plugins_dir, stale_after=2.0)
        client = StudyClient(url)
        study_id = client.submit(spec_dict)["id"]

        # Wait for mid-flight: >= 2 checkpointed steps, well short of 8.
        deadline = time.monotonic() + 60
        runner_pid = None
        while time.monotonic() < deadline:
            doc = client.status(study_id)
            steps = sum(
                job["checkpointed_steps"]
                for job in doc["progress"]["jobs"].values()
            )
            if doc["state"] == "running" and steps >= 2:
                runner_pid = doc["pid"]
                break
            time.sleep(0.05)
        assert runner_pid is not None, "study never reached mid-flight"
        assert steps < 8, "study finished before it could be killed"
        assert runner_pid != proc.pid  # the lease points at the runner

        # Kill the server first (it must not get a chance to mark the
        # study failed when the runner dies), then the runner's group.
        kill_server(proc)
        try:
            os.killpg(runner_pid, signal.SIGKILL)
        except ProcessLookupError:
            pytest.fail("runner exited early; the kill was not mid-study")

        # Nothing recorded a terminal state: the row still says
        # running, with a heartbeat that is now going stale.
        row = RunLedger(state / "queue.sqlite").study(study_id)
        assert row["state"] == "running"

        # A fresh server on the same state dir reclaims and resumes.
        proc2, url2 = start_server(state, plugins_dir, stale_after=2.0)
        try:
            final = StudyClient(url2).wait(study_id, timeout=120)
            assert final["state"] == "done"

            register_slow_source_locally(plugins_dir)
            local = run_study(
                StudySpec.from_dict(spec_dict), scale=Scale.named("smoke")
            )
            # Bit-identical: best_rewards are full-precision floats and
            # JSON round-trips IEEE-754 doubles exactly.
            assert final["result"]["outcomes"] == outcome_summary(local)
        finally:
            kill_server(proc2)
