"""Tests for repro.nasbench.skeleton (channel inference + config)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nasbench.skeleton import (
    CIFAR10_SKELETON,
    CIFAR100_SKELETON,
    SkeletonConfig,
    compute_vertex_channels,
)


class TestSkeletonConfig:
    def test_defaults_match_nasbench(self):
        assert CIFAR10_SKELETON.stem_channels == 128
        assert CIFAR10_SKELETON.num_stacks == 3
        assert CIFAR10_SKELETON.cells_per_stack == 3
        assert CIFAR10_SKELETON.num_classes == 10
        assert CIFAR100_SKELETON.num_classes == 100

    def test_stack_channels_double(self):
        assert CIFAR10_SKELETON.stack_channels() == [128, 256, 512]

    def test_stack_spatial_halves(self):
        assert CIFAR10_SKELETON.stack_spatial() == [(32, 32), (16, 16), (8, 8)]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SkeletonConfig(stem_channels=0)

    def test_rejects_undivisible_input(self):
        with pytest.raises(ValueError):
            SkeletonConfig(input_height=30, input_width=30, num_stacks=3)


def chain_matrix(n):
    m = np.zeros((n, n), dtype=np.int8)
    for i in range(n - 1):
        m[i, i + 1] = 1
    return m


class TestVertexChannels:
    def test_two_vertex_cell(self):
        assert compute_vertex_channels(128, 256, chain_matrix(2)) == [128, 256]

    def test_chain_propagates_output(self):
        assert compute_vertex_channels(128, 256, chain_matrix(4)) == [128, 256, 256, 256]

    def test_even_split_on_concat(self):
        m = np.zeros((4, 4), dtype=np.int8)
        m[0, 1] = m[0, 2] = m[1, 3] = m[2, 3] = 1
        assert compute_vertex_channels(128, 256, m) == [128, 128, 128, 256]

    def test_remainder_goes_to_first(self):
        m = np.zeros((5, 5), dtype=np.int8)
        m[0, 1] = m[0, 2] = m[0, 3] = 1
        m[1, 4] = m[2, 4] = m[3, 4] = 1
        channels = compute_vertex_channels(128, 128, m)
        assert channels[1:4] == [43, 43, 42]
        assert sum(channels[1:4]) == 128

    def test_interior_takes_max_of_successors(self):
        # v1 -> v2 and v1 -> v3; v2, v3 -> output with unequal split.
        m = np.zeros((5, 5), dtype=np.int8)
        m[0, 1] = m[1, 2] = m[1, 3] = m[2, 4] = m[3, 4] = 1
        channels = compute_vertex_channels(128, 127, m)
        assert channels[2] == 64 and channels[3] == 63
        assert channels[1] == 64  # max of successors

    def test_output_skip_not_counted_in_split(self):
        m = np.zeros((3, 3), dtype=np.int8)
        m[0, 1] = m[1, 2] = m[0, 2] = 1  # input->output skip
        assert compute_vertex_channels(128, 256, m) == [128, 256, 256]

    def test_needs_interior_predecessor(self):
        m = np.zeros((3, 3), dtype=np.int8)
        m[0, 2] = 1
        m[0, 1] = 1  # v1 reaches nothing (would be pruned upstream)
        with pytest.raises(ValueError):
            compute_vertex_channels(8, 8, m)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**10 - 1), st.integers(8, 256), st.integers(8, 256))
    def test_invariants_on_random_pruned_cells(self, bits, in_ch, out_ch):
        from repro.nasbench import graph_util
        from repro.nasbench.ops import CONV3X3, INPUT, OUTPUT

        n = 5
        m = np.zeros((n, n), dtype=np.int8)
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        for k, (i, j) in enumerate(pairs):
            m[i, j] = (bits >> k) & 1
        pruned = graph_util.prune(m, [INPUT] + [CONV3X3] * (n - 2) + [OUTPUT])
        if pruned is None:
            return
        matrix, _ = pruned
        channels = compute_vertex_channels(in_ch, out_ch, matrix)
        v = matrix.shape[0]
        # Concat inputs sum exactly to the output channels.
        if v > 2:
            fan_in = sum(channels[i] for i in range(1, v - 1) if matrix[i, v - 1])
            assert fan_in == out_ch
        # Channels never increase along interior edges.
        for i in range(1, v - 1):
            for j in range(i + 1, v - 1):
                if matrix[i, j]:
                    assert channels[i] >= channels[j]
