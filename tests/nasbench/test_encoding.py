"""Tests for repro.nasbench.encoding (controller action space)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nasbench.encoding import CellEncoding
from repro.nasbench.known_cells import KNOWN_CELLS


class TestShape:
    def test_token_counts_full_space(self):
        enc = CellEncoding(max_vertices=7)
        assert enc.num_edge_tokens == 21
        assert enc.num_op_tokens == 5
        assert enc.num_tokens == 26
        assert enc.vocab_sizes == [2] * 21 + [3] * 5

    def test_micro_space(self):
        enc = CellEncoding(max_vertices=5)
        assert enc.num_edge_tokens == 10
        assert enc.num_op_tokens == 3

    def test_space_size(self):
        enc = CellEncoding(max_vertices=5)
        assert enc.space_size == 2**10 * 3**3

    def test_rejects_bad_vertex_count(self):
        with pytest.raises(ValueError):
            CellEncoding(max_vertices=8)
        with pytest.raises(ValueError):
            CellEncoding(max_vertices=1)


class TestDecode:
    def test_wrong_length_raises(self):
        enc = CellEncoding(max_vertices=5)
        with pytest.raises(ValueError):
            enc.decode([0] * 5)

    def test_out_of_range_action_raises(self):
        enc = CellEncoding(max_vertices=5)
        actions = [0] * enc.num_tokens
        actions[0] = 2
        with pytest.raises(ValueError):
            enc.decode(actions)

    def test_all_zero_actions_invalid_spec(self):
        enc = CellEncoding(max_vertices=5)
        spec = enc.decode([0] * enc.num_tokens)
        assert not spec.valid  # no edges -> no path

    def test_known_cells_round_trip(self):
        enc = CellEncoding(max_vertices=7)
        for name, factory in KNOWN_CELLS.items():
            spec = factory()
            decoded = enc.decode(enc.encode(spec))
            assert decoded.valid, name
            assert decoded.spec_hash() == spec.spec_hash(), name

    def test_encode_rejects_invalid(self):
        import numpy as np

        from repro.nasbench.model_spec import ModelSpec
        from repro.nasbench.ops import CONV3X3, INPUT, OUTPUT

        enc = CellEncoding(max_vertices=5)
        bad = ModelSpec(np.zeros((3, 3), dtype=int), (INPUT, CONV3X3, OUTPUT))
        with pytest.raises(ValueError):
            enc.encode(bad)

    def test_encode_rejects_too_large(self):
        from repro.nasbench.known_cells import googlenet_cell

        enc = CellEncoding(max_vertices=5)
        with pytest.raises(ValueError):
            enc.encode(googlenet_cell())  # 7 vertices


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_random_actions_decode_and_round_trip(data):
    enc = CellEncoding(max_vertices=5)
    actions = [data.draw(st.integers(0, v - 1)) for v in enc.vocab_sizes]
    spec = enc.decode(actions)
    if spec.valid:
        again = enc.decode(enc.encode(spec))
        assert again.valid
        assert again.spec_hash() == spec.spec_hash()


def test_random_actions_within_vocab(rng):
    enc = CellEncoding(max_vertices=6)
    for _ in range(20):
        actions = enc.random_actions(rng)
        assert len(actions) == enc.num_tokens
        assert all(0 <= a < v for a, v in zip(actions, enc.vocab_sizes))
