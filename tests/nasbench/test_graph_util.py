"""Tests for repro.nasbench.graph_util."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nasbench import graph_util


def chain(n):
    m = np.zeros((n, n), dtype=np.int8)
    for i in range(n - 1):
        m[i, i + 1] = 1
    return m


class TestBasics:
    def test_upper_triangular(self):
        assert graph_util.is_upper_triangular(chain(4))
        bad = chain(4)
        bad[2, 1] = 1
        assert not graph_util.is_upper_triangular(bad)

    def test_num_edges(self):
        assert graph_util.num_edges(chain(5)) == 4

    def test_reachability(self):
        m = chain(4)
        assert graph_util.reachable_from(m, 0) == {0, 1, 2, 3}
        assert graph_util.reaching_to(m, 3) == {0, 1, 2, 3}

    def test_unreachable_vertex(self):
        m = np.zeros((3, 3), dtype=np.int8)
        m[0, 2] = 1  # vertex 1 is isolated
        assert graph_util.reachable_from(m, 0) == {0, 2}


class TestPrune:
    def test_keeps_connected(self):
        result = graph_util.prune(chain(4), ["input", "a", "b", "output"])
        assert result is not None
        matrix, ops = result
        assert matrix.shape == (4, 4)
        assert ops == ["input", "a", "b", "output"]

    def test_removes_dangling(self):
        m = np.zeros((4, 4), dtype=np.int8)
        m[0, 1] = 1
        m[1, 3] = 1
        m[0, 2] = 1  # vertex 2 never reaches the output
        result = graph_util.prune(m, ["input", "a", "b", "output"])
        matrix, ops = result
        assert matrix.shape == (3, 3)
        assert ops == ["input", "a", "output"]

    def test_disconnected_returns_none(self):
        m = np.zeros((3, 3), dtype=np.int8)
        m[0, 1] = 1  # nothing reaches the output
        assert graph_util.prune(m, ["input", "a", "output"]) is None

    def test_direct_edge_only(self):
        m = np.zeros((2, 2), dtype=np.int8)
        m[0, 1] = 1
        matrix, ops = graph_util.prune(m, ["input", "output"])
        assert matrix.shape == (2, 2)


class TestHashModule:
    def test_isomorphic_graphs_collide(self):
        m = np.zeros((4, 4), dtype=np.int8)
        m[0, 1] = m[0, 2] = m[1, 3] = m[2, 3] = 1
        labels = [-1, 0, 1, -2]
        permuted, plabels = graph_util.permute_matrix(
            m, [str(x) for x in labels], [0, 2, 1, 3]
        )
        h1 = graph_util.hash_module(m, labels)
        h2 = graph_util.hash_module(permuted, [int(x) for x in plabels])
        assert h1 == h2

    def test_different_labels_differ(self):
        m = chain(4)
        assert graph_util.hash_module(m, [-1, 0, 0, -2]) != graph_util.hash_module(
            m, [-1, 0, 1, -2]
        )

    def test_different_topology_differs(self):
        m1 = chain(4)
        m2 = chain(4)
        m2[0, 3] = 1
        labels = [-1, 0, 0, -2]
        assert graph_util.hash_module(m1, labels) != graph_util.hash_module(m2, labels)

    def test_label_length_mismatch_raises(self):
        import pytest

        with pytest.raises(ValueError):
            graph_util.hash_module(chain(3), [-1, -2])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**20 - 1), st.permutations(list(range(5))))
    def test_hash_invariant_under_permutation(self, bits, perm):
        n = 5
        m = np.zeros((n, n), dtype=np.int8)
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        for k, (i, j) in enumerate(pairs):
            m[i, j] = (bits >> k) & 1
        labels = [-1, 0, 1, 2, -2]
        plabels = [0] * n
        pm = np.zeros_like(m)
        for src in range(n):
            plabels[perm[src]] = labels[src]
            for dst in range(n):
                if m[src, dst]:
                    pm[perm[src], perm[dst]] = 1
        assert graph_util.hash_module(m, labels) == graph_util.hash_module(pm, plabels)


class TestPaths:
    def test_longest_path(self):
        assert graph_util.longest_path_length(chain(5)) == 5

    def test_longest_path_with_shortcut(self):
        m = chain(4)
        m[0, 3] = 1
        assert graph_util.longest_path_length(m) == 4

    def test_unreachable_output(self):
        m = np.zeros((3, 3), dtype=np.int8)
        m[0, 1] = 1
        assert graph_util.longest_path_length(m) == 0

    def test_topological_layers(self):
        m = chain(4)
        m[0, 2] = 1
        assert graph_util.topological_layers(m) == [0, 1, 2, 3]
