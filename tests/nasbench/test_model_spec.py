"""Tests for repro.nasbench.model_spec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nasbench.model_spec import MAX_EDGES, MAX_VERTICES, InvalidSpecError, ModelSpec
from repro.nasbench.ops import CONV1X1, CONV3X3, INPUT, MAXPOOL3X3, OUTPUT


def make_spec(matrix, interior_ops):
    n = len(matrix)
    ops = (INPUT, *interior_ops, OUTPUT)
    assert len(ops) == n
    return ModelSpec(np.array(matrix), ops)


VALID_3 = [[0, 1, 0], [0, 0, 1], [0, 0, 0]]


class TestValidity:
    def test_simple_chain_valid(self):
        spec = make_spec(VALID_3, [CONV3X3])
        assert spec.valid
        assert spec.num_vertices == 3
        assert spec.num_edges == 2

    def test_too_many_vertices(self):
        n = MAX_VERTICES + 1
        m = np.zeros((n, n), dtype=int)
        m[0, n - 1] = 1
        spec = ModelSpec(m, (INPUT, *[CONV3X3] * (n - 2), OUTPUT))
        assert not spec.valid
        assert "vertices" in spec.invalid_reason

    def test_too_many_edges_after_pruning(self):
        n = 6
        m = np.triu(np.ones((n, n), dtype=int), 1)  # 15 edges
        spec = ModelSpec(m, (INPUT, *[CONV3X3] * (n - 2), OUTPUT))
        assert not spec.valid
        assert str(MAX_EDGES) in spec.invalid_reason

    def test_disconnected_invalid(self):
        spec = make_spec([[0, 1, 0], [0, 0, 0], [0, 0, 0]], [CONV3X3])
        assert not spec.valid
        assert "path" in spec.invalid_reason

    def test_lower_triangular_invalid(self):
        spec = make_spec([[0, 1, 1], [1, 0, 1], [0, 0, 0]], [CONV3X3])
        assert not spec.valid

    def test_non_binary_invalid(self):
        spec = make_spec([[0, 2, 0], [0, 0, 1], [0, 0, 0]], [CONV3X3])
        assert not spec.valid

    def test_bad_interior_op(self):
        spec = ModelSpec(np.array(VALID_3), (INPUT, "conv7x7", OUTPUT))
        assert not spec.valid

    def test_bad_endpoint_ops(self):
        spec = ModelSpec(np.array(VALID_3), (CONV3X3, CONV3X3, OUTPUT))
        assert not spec.valid
        spec = ModelSpec(np.array(VALID_3), (INPUT, CONV3X3, CONV3X3))
        assert not spec.valid

    def test_single_vertex_invalid(self):
        spec = ModelSpec(np.zeros((1, 1), dtype=int), (INPUT,))
        assert not spec.valid


class TestPruning:
    def test_dangling_vertex_removed(self):
        # Vertex 2 has no path to the output.
        spec = make_spec(
            [[0, 1, 1, 0], [0, 0, 0, 1], [0, 0, 0, 0], [0, 0, 0, 0]],
            [CONV3X3, CONV1X1],
        )
        assert spec.valid
        assert spec.num_vertices == 3
        assert CONV1X1 not in spec.ops

    def test_pruned_spec_equpossible_to_original(self):
        pruned = make_spec(
            [[0, 1, 1, 0], [0, 0, 0, 1], [0, 0, 0, 0], [0, 0, 0, 0]],
            [CONV3X3, CONV1X1],
        )
        direct = make_spec(VALID_3, [CONV3X3])
        assert pruned == direct
        assert pruned.spec_hash() == direct.spec_hash()

    def test_original_preserved(self):
        matrix = [[0, 1, 1, 0], [0, 0, 0, 1], [0, 0, 0, 0], [0, 0, 0, 0]]
        spec = make_spec(matrix, [CONV3X3, CONV1X1])
        assert spec.original_matrix.shape == (4, 4)
        assert len(spec.original_ops) == 4


class TestProperties:
    def test_op_counts(self):
        spec = make_spec(
            [[0, 1, 1, 0], [0, 0, 0, 1], [0, 0, 0, 1], [0, 0, 0, 0]],
            [CONV3X3, MAXPOOL3X3],
        )
        counts = spec.op_counts()
        assert counts[CONV3X3] == 1
        assert counts[MAXPOOL3X3] == 1
        assert counts[CONV1X1] == 0

    def test_depth(self):
        spec = make_spec(VALID_3, [CONV3X3])
        assert spec.depth() == 3

    def test_output_skip(self):
        spec = make_spec([[0, 1, 1], [0, 0, 1], [0, 0, 0]], [CONV3X3])
        assert spec.has_output_skip()
        assert not make_spec(VALID_3, [CONV3X3]).has_output_skip()

    def test_invalid_spec_has_no_hash(self):
        spec = make_spec([[0, 1, 0], [0, 0, 0], [0, 0, 0]], [CONV3X3])
        with pytest.raises(InvalidSpecError):
            spec.spec_hash()

    def test_str_contains_ops(self):
        assert CONV3X3 in str(make_spec(VALID_3, [CONV3X3]))
        assert "invalid" in str(make_spec([[0, 0, 0]] * 3, [CONV3X3]))


class TestSerialization:
    def test_round_trip(self):
        spec = make_spec(VALID_3, [CONV3X3])
        clone = ModelSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_hashable(self):
        a = make_spec(VALID_3, [CONV3X3])
        b = make_spec(VALID_3, [CONV3X3])
        assert len({a, b}) == 1


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**10 - 1), st.tuples(*[st.integers(0, 2)] * 3))
def test_construction_never_crashes(bits, op_idx):
    """Any raw (matrix, ops) decodes to a spec, valid or not."""
    from repro.nasbench.ops import INTERIOR_OPS

    n = 5
    m = np.zeros((n, n), dtype=int)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    for k, (i, j) in enumerate(pairs):
        m[i, j] = (bits >> k) & 1
    ops = (INPUT, *(INTERIOR_OPS[i] for i in op_idx), OUTPUT)
    spec = ModelSpec(m, ops)
    if spec.valid:
        assert 2 <= spec.num_vertices <= n
        assert spec.num_edges <= MAX_EDGES
        spec.spec_hash()
