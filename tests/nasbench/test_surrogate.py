"""Tests for the calibrated CIFAR-10 surrogate."""

import numpy as np
import pytest

from repro.nasbench.known_cells import googlenet_cell, resnet_cell
from repro.nasbench.model_spec import ModelSpec
from repro.nasbench.ops import CONV3X3, INPUT, MAXPOOL3X3, OUTPUT
from repro.nasbench.surrogate import Cifar10Surrogate, extract_features


def chain_spec(*interior):
    n = len(interior) + 2
    m = np.zeros((n, n), dtype=int)
    for i in range(n - 1):
        m[i, i + 1] = 1
    return ModelSpec(m, (INPUT, *interior, OUTPUT))


class TestFeatures:
    def test_resnet_features(self):
        f = extract_features(resnet_cell())
        assert f.n_conv3x3 == 2
        assert f.depth == 4
        assert f.has_output_skip
        assert f.giga_macs > 2.0
        assert 7.0 < f.log10_params < 7.6

    def test_googlenet_wider_than_resnet(self):
        assert extract_features(googlenet_cell()).width > extract_features(resnet_cell()).width

    def test_invalid_spec_rejected(self):
        bad = ModelSpec(np.zeros((3, 3), dtype=int), (INPUT, CONV3X3, OUTPUT))
        with pytest.raises(ValueError):
            extract_features(bad)

    def test_vector_shape(self):
        assert extract_features(resnet_cell()).as_vector().shape == (10,)


class TestAccuracy:
    def test_deterministic(self):
        s = Cifar10Surrogate()
        spec = resnet_cell()
        assert s.validation_accuracy(spec) == s.validation_accuracy(spec)

    def test_seed_changes_noise(self):
        spec = resnet_cell()
        a = Cifar10Surrogate(seed=1).validation_accuracy(spec)
        b = Cifar10Surrogate(seed=2).validation_accuracy(spec)
        assert a != b
        assert abs(a - b) < 3.0  # same mean, different noise

    def test_within_bounds(self):
        s = Cifar10Surrogate()
        acc = s.validation_accuracy(resnet_cell())
        assert s.floor <= acc <= s.ceiling

    def test_deeper_conv_cells_beat_shallow(self):
        s = Cifar10Surrogate(noise_std=0.0)
        deep = chain_spec(CONV3X3, CONV3X3, CONV3X3)
        shallow = chain_spec(CONV3X3)
        assert s.validation_accuracy(deep) > s.validation_accuracy(shallow)

    def test_pool_only_cell_is_weak(self):
        s = Cifar10Surrogate(noise_std=0.0)
        pooly = chain_spec(MAXPOOL3X3, MAXPOOL3X3)
        convy = chain_spec(CONV3X3, CONV3X3)
        assert s.validation_accuracy(convy) - s.validation_accuracy(pooly) > 1.0

    def test_resnet_beats_most_of_micro_space(self):
        s = Cifar10Surrogate()
        assert s.validation_accuracy(resnet_cell()) > 92.5

    def test_test_accuracy_below_validation(self):
        s = Cifar10Surrogate(noise_std=0.0)
        spec = resnet_cell()
        assert s.test_accuracy(spec) < s.validation_accuracy(spec)

    def test_cached_matches_uncached(self):
        s = Cifar10Surrogate()
        spec = googlenet_cell()
        assert s.validation_accuracy_cached(spec) == s.validation_accuracy(spec)


class TestTrainingTime:
    def test_positive_and_scales_with_macs(self):
        s = Cifar10Surrogate()
        small = chain_spec(MAXPOOL3X3)
        big = resnet_cell()
        assert 0 < s.training_seconds(small) < s.training_seconds(big)
