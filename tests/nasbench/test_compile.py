"""Tests for repro.nasbench.compile (spec -> op-level IR)."""

import numpy as np
import pytest

from repro.nasbench import ops as O
from repro.nasbench.compile import compile_cell_ops, compile_network
from repro.nasbench.known_cells import KNOWN_CELLS, googlenet_cell, resnet_cell
from repro.nasbench.model_spec import InvalidSpecError, ModelSpec
from repro.nasbench.ops import CONV3X3, INPUT, OUTPUT
from repro.nasbench.skeleton import CIFAR10_SKELETON, SkeletonConfig


class TestStructure:
    def test_ir_is_valid_dag(self, known_cell):
        ir = compile_network(known_cell, CIFAR10_SKELETON)
        ir.validate()

    def test_first_op_is_stem_last_is_dense(self, known_cell):
        ir = compile_network(known_cell, CIFAR10_SKELETON)
        assert ir.ops[0].kind == O.KIND_STEM
        assert ir.ops[-1].kind == O.KIND_DENSE
        assert ir.ops[-2].kind == O.KIND_GAP

    def test_resnet_op_inventory(self):
        ir = compile_network(resnet_cell(), CIFAR10_SKELETON)
        counts = ir.count_kinds()
        # Per cell: proj into v1, two conv3x3, output skip proj + add.
        assert counts[O.KIND_CONV3X3] == 18
        assert counts[O.KIND_PROJ1X1] == 18
        assert counts[O.KIND_ADD] == 9
        assert counts[O.KIND_DOWNSAMPLE] == 2
        assert len(ir.ops) == 50

    def test_googlenet_has_concat_and_pool(self):
        ir = compile_network(googlenet_cell(), CIFAR10_SKELETON)
        counts = ir.count_kinds()
        assert counts[O.KIND_CONCAT] == 9
        assert counts[O.KIND_MAXPOOL3X3] == 9

    def test_invalid_spec_raises(self):
        bad = ModelSpec(np.zeros((3, 3), dtype=int), (INPUT, CONV3X3, OUTPUT))
        with pytest.raises(InvalidSpecError):
            compile_network(bad, CIFAR10_SKELETON)

    def test_degenerate_input_output_cell(self):
        m = np.zeros((2, 2), dtype=int)
        m[0, 1] = 1
        spec = ModelSpec(m, (INPUT, OUTPUT))
        ir = compile_network(spec, CIFAR10_SKELETON)
        # Each cell reduces to a single projection.
        assert ir.count_kinds()[O.KIND_PROJ1X1] == 9


class TestArithmetic:
    def test_resnet_macs_in_expected_range(self):
        ir = compile_network(resnet_cell(), CIFAR10_SKELETON)
        assert 2.5e9 < ir.total_macs < 3.5e9

    def test_params_positive_and_conv_dominated(self, known_cell):
        ir = compile_network(known_cell, CIFAR10_SKELETON)
        conv_params = sum(op.params for op in ir.ops if op.kind in O.CONV_KINDS)
        assert ir.total_params > 0
        assert conv_params / ir.total_params > 0.9

    def test_stem_macs(self):
        ir = compile_network(resnet_cell(), CIFAR10_SKELETON)
        stem = ir.ops[0]
        assert stem.macs == 9 * 3 * 128 * 32 * 32

    def test_downsample_halves_spatial(self):
        ir = compile_network(resnet_cell(), CIFAR10_SKELETON)
        ds = [op for op in ir.ops if op.kind == O.KIND_DOWNSAMPLE]
        assert ds[0].height == 32 and ds[0].out_height == 16
        assert ds[1].height == 16 and ds[1].out_height == 8

    def test_classifier_shape(self):
        sk = SkeletonConfig(num_classes=100)
        ir = compile_network(resnet_cell(), sk)
        dense = ir.ops[-1]
        assert dense.in_channels == 512
        assert dense.out_channels == 100

    def test_channel_doubling_across_stacks(self):
        ir = compile_network(resnet_cell(), CIFAR10_SKELETON)
        convs = [op for op in ir.ops if op.kind == O.KIND_CONV3X3]
        assert {op.out_channels for op in convs} == {128, 256, 512}


class TestSignaturesAndBytes:
    def test_signature_fields(self):
        ir = compile_network(resnet_cell(), CIFAR10_SKELETON)
        op = ir.ops[0]
        assert op.signature() == (O.KIND_STEM, 3, 128, 32, 32, 1)

    def test_unique_signatures_bounded(self, known_cell):
        ir = compile_network(known_cell, CIFAR10_SKELETON)
        unique = ir.unique_signatures()
        assert 0 < len(unique) <= len(ir.ops)

    def test_weight_bytes_zero_for_pool(self):
        ir = compile_network(googlenet_cell(), CIFAR10_SKELETON)
        pools = [op for op in ir.ops if op.kind == O.KIND_MAXPOOL3X3]
        assert all(op.weight_bytes == 0 for op in pools)
        assert all(op.macs == 0 for op in pools)
        assert all(op.work > 0 for op in pools)

    def test_caching_returns_same_object(self):
        a = compile_cell_ops(resnet_cell(), CIFAR10_SKELETON)
        b = compile_cell_ops(resnet_cell(), CIFAR10_SKELETON)
        assert a is b
