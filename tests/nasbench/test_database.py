"""Tests for the cell database (NASBench table stand-in)."""

import numpy as np
import pytest

from repro.nasbench.database import (
    CellDatabase,
    CellRecord,
    enumerate_unique_cells,
    sample_unique_cells,
)
from repro.nasbench.known_cells import resnet_cell
from repro.nasbench.model_spec import ModelSpec
from repro.nasbench.ops import CONV3X3, INPUT, OUTPUT
from repro.nasbench.surrogate import Cifar10Surrogate


class TestEnumeration:
    def test_micro4_count_is_stable(self):
        cells = enumerate_unique_cells(4)
        # Pinned: the exhaustive <=4-vertex unique-cell count.
        assert len(cells) == len({c.spec_hash() for c in cells})
        assert len(cells) > 30

    def test_all_enumerated_valid(self):
        for spec in enumerate_unique_cells(3):
            assert spec.valid
            assert spec.num_vertices <= 3

    def test_enumeration_rejects_large_spaces(self):
        with pytest.raises(ValueError):
            enumerate_unique_cells(6)

    def test_resnet_cell_is_in_micro4(self):
        hashes = {c.spec_hash() for c in enumerate_unique_cells(4)}
        assert resnet_cell().spec_hash() in hashes


class TestSampling:
    def test_sampled_unique_and_in_range(self):
        cells = sample_unique_cells(25, seed=0)
        assert len(cells) == 25
        assert len({c.spec_hash() for c in cells}) == 25
        assert all(6 <= c.num_vertices <= 7 for c in cells)

    def test_seed_determinism(self):
        a = [c.spec_hash() for c in sample_unique_cells(10, seed=3)]
        b = [c.spec_hash() for c in sample_unique_cells(10, seed=3)]
        assert a == b

    def test_exclusion(self):
        first = sample_unique_cells(10, seed=0)
        exclude = {c.spec_hash() for c in first}
        more = sample_unique_cells(10, seed=0, exclude_hashes=exclude)
        assert not exclude & {c.spec_hash() for c in more}

    def test_budget_cap(self):
        cells = sample_unique_cells(10_000, seed=0, max_tries=500)
        assert len(cells) < 10_000


class TestDatabase:
    def test_from_specs_dedupes(self):
        spec = resnet_cell()
        db = CellDatabase.from_specs([spec, resnet_cell()])
        assert len(db) == 1

    def test_contains_and_get(self):
        db = CellDatabase.from_specs(enumerate_unique_cells(3))
        spec = db.records[0].spec
        assert spec in db
        record = db.get(spec)
        assert isinstance(record, CellRecord)
        assert record.validation_accuracy > 0

    def test_get_missing_returns_none(self):
        db = CellDatabase.from_specs(enumerate_unique_cells(3))
        outside = sample_unique_cells(1, seed=0)[0]
        assert db.get(outside) is None

    def test_invalid_spec_not_contained(self):
        db = CellDatabase.from_specs(enumerate_unique_cells(3))
        bad = ModelSpec(np.zeros((3, 3), dtype=int), (INPUT, CONV3X3, OUTPUT))
        assert bad not in db
        assert db.get(bad) is None

    def test_rejects_invalid_spec(self):
        bad = ModelSpec(np.zeros((3, 3), dtype=int), (INPUT, CONV3X3, OUTPUT))
        with pytest.raises(ValueError):
            CellDatabase.from_specs([bad])

    def test_accuracies_align_with_records(self):
        db = CellDatabase.from_specs(enumerate_unique_cells(3))
        acc = db.accuracies()
        assert len(acc) == len(db)
        assert acc[0] == db.records[0].validation_accuracy

    def test_nasbench_lite_superset_of_micro(self):
        db = CellDatabase.nasbench_lite(extra_cells=15, seed=0)
        micro_hashes = {c.spec_hash() for c in enumerate_unique_cells(5)}
        db_hashes = {r.spec_hash for r in db.records}
        assert micro_hashes <= db_hashes
        assert len(db_hashes) == len(micro_hashes) + 15

    def test_stats_keys(self):
        db = CellDatabase.from_specs(enumerate_unique_cells(3))
        stats = db.stats()
        assert set(stats) == {"count", "acc_min", "acc_mean", "acc_max"}
        assert stats["acc_min"] <= stats["acc_mean"] <= stats["acc_max"]

    def test_shared_surrogate_consistency(self):
        surrogate = Cifar10Surrogate(seed=9)
        db = CellDatabase.from_specs(enumerate_unique_cells(3), surrogate)
        rec = db.records[0]
        assert rec.validation_accuracy == surrogate.validation_accuracy(rec.spec)
