"""Tests for the reference cells (Fig. 8 and Section IV baselines)."""

from repro.nasbench import ops as O
from repro.nasbench.compile import compile_network
from repro.nasbench.known_cells import (
    KNOWN_CELLS,
    cod1_cell,
    cod2_cell,
    googlenet_cell,
    resnet_cell,
)
from repro.nasbench.ops import CONV1X1, CONV3X3, MAXPOOL3X3
from repro.nasbench.skeleton import CIFAR10_SKELETON


class TestAllCells:
    def test_all_valid(self, known_cell):
        assert known_cell.valid

    def test_hashes_distinct(self):
        hashes = {f().spec_hash() for f in KNOWN_CELLS.values()}
        assert len(hashes) == len(KNOWN_CELLS)

    def test_all_compile(self, known_cell):
        ir = compile_network(known_cell, CIFAR10_SKELETON)
        assert ir.total_macs > 0


class TestResNet:
    def test_structure(self):
        spec = resnet_cell()
        assert spec.num_vertices == 4
        assert spec.op_counts()[CONV3X3] == 2
        assert spec.has_output_skip()

    def test_skip_becomes_projection_add(self):
        ir = compile_network(resnet_cell(), CIFAR10_SKELETON)
        counts = ir.count_kinds()
        assert counts[O.KIND_ADD] == 9  # one per cell


class TestGoogLeNet:
    def test_structure(self):
        spec = googlenet_cell()
        assert spec.num_vertices == 7
        counts = spec.op_counts()
        assert counts[CONV1X1] == 3
        assert counts[CONV3X3] == 1
        assert counts[MAXPOOL3X3] == 1

    def test_three_branches_concat(self):
        ir = compile_network(googlenet_cell(), CIFAR10_SKELETON)
        concats = [op for op in ir.ops if op.kind == O.KIND_CONCAT]
        assert len(concats) == 9
        assert all(len(op.deps) == 3 for op in concats)


class TestCodCells:
    def test_cod1_matches_figure_inventory(self):
        spec = cod1_cell()
        counts = spec.op_counts()
        assert counts[CONV3X3] == 2
        assert counts[CONV1X1] == 1
        assert spec.has_output_skip()
        ir = compile_network(spec, CIFAR10_SKELETON)
        kinds = ir.count_kinds()
        # Two element-wise adds inside each cell plus concat at output.
        assert kinds[O.KIND_ADD] == 3 * 9
        assert kinds[O.KIND_CONCAT] == 9

    def test_cod2_matches_figure_inventory(self):
        spec = cod2_cell()
        counts = spec.op_counts()
        assert counts[MAXPOOL3X3] == 1
        assert counts[CONV3X3] == 1
        ir = compile_network(spec, CIFAR10_SKELETON)
        kinds = ir.count_kinds()
        # Two input projections per cell (one feeding the pool, one
        # merged with the pool result before the conv3x3).
        assert kinds[O.KIND_PROJ1X1] == 2 * 9
        assert kinds[O.KIND_MAXPOOL3X3] == 9

    def test_cod1_mac_mix_favors_3x3(self):
        """The basis of the ratio_conv_engines=1x1-share reading."""
        ir = compile_network(cod2_cell(), CIFAR10_SKELETON)
        macs_3x3 = sum(op.macs for op in ir.ops if O.is_conv3x3_shaped(op.kind))
        macs_1x1 = sum(op.macs for op in ir.ops if O.is_conv1x1_shaped(op.kind))
        assert macs_3x3 > 2 * macs_1x1
