"""Tests for Conv2D / BatchNorm2D / pooling with gradient checks."""

import numpy as np
import pytest

from repro.nn.conv import Conv2D
from repro.nn.norm import BatchNorm2D
from repro.nn.pool import MaxPool2x2, MaxPool3x3Same


def naive_conv_same(x, weight, k):
    b, c, h, w = x.shape
    f = weight.shape[0]
    kernel = weight.reshape(f, c, k, k)
    p = k // 2
    padded = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))
    out = np.zeros((b, f, h, w))
    for bi in range(b):
        for fi in range(f):
            for i in range(h):
                for j in range(w):
                    patch = padded[bi, :, i: i + k, j: j + k]
                    out[bi, fi, i, j] = np.sum(patch * kernel[fi])
    return out


class TestConv2D:
    def test_matches_naive(self, rng):
        conv = Conv2D(2, 3, 3, rng)
        x = rng.normal(size=(2, 2, 5, 5))
        assert np.allclose(conv.forward(x), naive_conv_same(x, conv.params["weight"], 3))

    def test_1x1_is_channel_mix(self, rng):
        conv = Conv2D(3, 2, 1, rng)
        x = rng.normal(size=(1, 3, 4, 4))
        out = conv.forward(x)
        w = conv.params["weight"]
        expected = np.einsum("fc,bchw->bfhw", w, x)
        assert np.allclose(out, expected)

    def test_rejects_even_kernel(self, rng):
        with pytest.raises(ValueError):
            Conv2D(2, 2, 2, rng)

    def test_rejects_wrong_channels(self, rng):
        conv = Conv2D(2, 3, 3, rng)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 5, 4, 4)))

    def test_gradients(self, rng):
        conv = Conv2D(2, 2, 3, rng)
        x = rng.normal(size=(1, 2, 4, 4))
        dout = rng.normal(size=(1, 2, 4, 4))
        conv.forward(x)
        conv.zero_grads()
        (dx,) = conv.backward(dout)
        eps = 1e-6
        # weight gradient
        flat = conv.params["weight"].reshape(-1)
        gflat = conv.grads["weight"].reshape(-1)
        for idx in rng.choice(flat.size, size=5, replace=False):
            orig = flat[idx]
            flat[idx] = orig + eps
            plus = float(np.sum(conv.forward(x) * dout))
            flat[idx] = orig - eps
            minus = float(np.sum(conv.forward(x) * dout))
            flat[idx] = orig
            assert (plus - minus) / (2 * eps) == pytest.approx(gflat[idx], rel=1e-4, abs=1e-7)
        # input gradient
        xflat = x.reshape(-1)
        dxflat = dx.reshape(-1)
        for idx in rng.choice(xflat.size, size=5, replace=False):
            orig = xflat[idx]
            xflat[idx] = orig + eps
            plus = float(np.sum(conv.forward(x) * dout))
            xflat[idx] = orig - eps
            minus = float(np.sum(conv.forward(x) * dout))
            xflat[idx] = orig
            assert (plus - minus) / (2 * eps) == pytest.approx(dxflat[idx], rel=1e-4, abs=1e-7)


class TestBatchNorm:
    def test_normalizes_in_train_mode(self, rng):
        bn = BatchNorm2D(3)
        x = rng.normal(loc=5.0, scale=2.0, size=(8, 3, 4, 4))
        out = bn.forward(x)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2D(2)
        for _ in range(50):
            bn.forward(rng.normal(loc=3.0, size=(16, 2, 2, 2)))
        bn.training = False
        out = bn.forward(np.full((4, 2, 2, 2), 3.0))
        assert np.allclose(out, 0.0, atol=0.3)

    def test_gradients(self, rng):
        bn = BatchNorm2D(2)
        x = rng.normal(size=(4, 2, 3, 3))
        dout = rng.normal(size=(4, 2, 3, 3))
        bn.forward(x)
        bn.zero_grads()
        (dx,) = bn.backward(dout)
        eps = 1e-6
        xflat = x.reshape(-1)
        dxflat = dx.reshape(-1)
        for idx in rng.choice(xflat.size, size=6, replace=False):
            orig = xflat[idx]
            xflat[idx] = orig + eps
            plus = float(np.sum(bn.forward(x) * dout))
            xflat[idx] = orig - eps
            minus = float(np.sum(bn.forward(x) * dout))
            xflat[idx] = orig
            assert (plus - minus) / (2 * eps) == pytest.approx(dxflat[idx], rel=1e-3, abs=1e-6)

    def test_rejects_wrong_channels(self, rng):
        with pytest.raises(ValueError):
            BatchNorm2D(3).forward(np.zeros((1, 2, 2, 2)))


class TestPools:
    def test_maxpool3x3_shape_preserved(self, rng):
        x = rng.normal(size=(2, 3, 5, 5))
        assert MaxPool3x3Same().forward(x).shape == x.shape

    def test_maxpool3x3_values(self):
        x = np.zeros((1, 1, 3, 3))
        x[0, 0, 1, 1] = 7.0
        out = MaxPool3x3Same().forward(x)
        assert np.all(out == 7.0)  # the centre dominates every window

    def test_maxpool3x3_gradient_routes_to_argmax(self):
        pool = MaxPool3x3Same()
        x = np.zeros((1, 1, 3, 3))
        x[0, 0, 1, 1] = 7.0
        pool.forward(x)
        (dx,) = pool.backward(np.ones((1, 1, 3, 3)))
        assert dx[0, 0, 1, 1] == 9.0
        assert dx.sum() == 9.0

    def test_maxpool2x2_downsamples(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        out = MaxPool2x2().forward(x)
        assert out.shape == (1, 2, 3, 3)
        assert out[0, 0, 0, 0] == x[0, 0, :2, :2].max()

    def test_maxpool2x2_rejects_odd(self, rng):
        with pytest.raises(ValueError):
            MaxPool2x2().forward(rng.normal(size=(1, 1, 5, 5)))

    def test_maxpool2x2_gradient(self, rng):
        pool = MaxPool2x2()
        x = rng.normal(size=(1, 1, 4, 4))
        out = pool.forward(x)
        (dx,) = pool.backward(np.ones_like(out))
        assert dx.sum() == out.size
        assert np.count_nonzero(dx) == out.size
