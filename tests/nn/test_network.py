"""Tests for IR-driven networks: builder fidelity and training."""

import numpy as np
import pytest

from repro.nasbench.compile import compile_network
from repro.nasbench.known_cells import KNOWN_CELLS
from repro.nn.builder import build_network
from repro.nn.data import synthetic_cifar
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.schedule import ConstantLR, CosineDecay
from repro.nn.trainer import TrainConfig, Trainer


class TestBuilder:
    def test_param_count_matches_ir(self, known_cell, tiny_skeleton):
        net = build_network(known_cell, tiny_skeleton, seed=0)
        ir = compile_network(known_cell, tiny_skeleton)
        assert net.num_params() == ir.total_params

    def test_forward_shape(self, known_cell, tiny_skeleton, rng):
        net = build_network(known_cell, tiny_skeleton, seed=0)
        x = rng.normal(size=(2, 2, 8, 8))
        assert net.forward(x).shape == (2, 3)

    def test_backward_runs(self, known_cell, tiny_skeleton, rng):
        net = build_network(known_cell, tiny_skeleton, seed=0)
        x = rng.normal(size=(2, 2, 8, 8))
        net.forward(x)
        dinput = net.backward(np.ones((2, 3)) * 0.1)
        assert dinput.shape == x.shape

    def test_invalid_spec_raises(self, tiny_skeleton):
        from repro.nasbench.model_spec import InvalidSpecError, ModelSpec
        from repro.nasbench.ops import CONV3X3, INPUT, OUTPUT

        bad = ModelSpec(np.zeros((3, 3), dtype=int), (INPUT, CONV3X3, OUTPUT))
        with pytest.raises(InvalidSpecError):
            build_network(bad, tiny_skeleton)

    def test_seed_determinism(self, tiny_skeleton, rng):
        spec = KNOWN_CELLS["resnet"]()
        x = rng.normal(size=(1, 2, 8, 8))
        a = build_network(spec, tiny_skeleton, seed=7).forward(x)
        b = build_network(spec, tiny_skeleton, seed=7).forward(x)
        assert np.array_equal(a, b)

    def test_full_network_gradient_check(self, tiny_skeleton, rng):
        net = build_network(KNOWN_CELLS["cod2"](), tiny_skeleton, seed=1)
        loss = SoftmaxCrossEntropy()
        x = rng.normal(size=(2, 2, 8, 8))
        y = np.array([0, 2])
        net.set_training(True)
        net.zero_grads()
        loss.forward(net.forward(x), y)
        net.backward(loss.backward())
        eps = 1e-5
        checked = 0
        for layer in net.layers():
            for key, p in layer.params.items():
                flat = p.reshape(-1)
                g = layer.grads[key].reshape(-1)
                idx = int(rng.integers(0, flat.size))
                orig = flat[idx]
                flat[idx] = orig + eps
                plus = loss.forward(net.forward(x), y)
                flat[idx] = orig - eps
                minus = loss.forward(net.forward(x), y)
                flat[idx] = orig
                numeric = (plus - minus) / (2 * eps)
                assert numeric == pytest.approx(g[idx], rel=1e-2, abs=1e-6)
                checked += 1
        assert checked > 5


class TestTraining:
    def test_loss_decreases(self, tiny_skeleton):
        train, _ = synthetic_cifar(
            n_train=96, n_test=16, n_classes=3, size=8, channels=2, seed=0
        )
        net = build_network(KNOWN_CELLS["resnet"](), tiny_skeleton, seed=0)
        trainer = Trainer(
            net,
            TrainConfig(epochs=4, batch_size=16, learning_rate=0.05, augment=False),
            seed=1,
        )
        history = trainer.fit(train)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_beats_chance_on_synthetic(self, tiny_skeleton):
        train, test = synthetic_cifar(
            n_train=192, n_test=48, n_classes=3, size=8, channels=2, seed=2
        )
        net = build_network(KNOWN_CELLS["resnet"](), tiny_skeleton, seed=0)
        trainer = Trainer(
            net,
            TrainConfig(epochs=5, batch_size=16, learning_rate=0.05, augment=False),
            seed=1,
        )
        trainer.fit(train)
        assert trainer.evaluate(test) > 0.5  # chance = 1/3

    def test_evaluate_restores_training_mode(self, tiny_skeleton):
        train, test = synthetic_cifar(
            n_train=32, n_test=16, n_classes=3, size=8, channels=2, seed=0
        )
        net = build_network(KNOWN_CELLS["resnet"](), tiny_skeleton, seed=0)
        trainer = Trainer(net, TrainConfig(epochs=1, augment=False), seed=0)
        trainer.evaluate(test)
        assert all(layer.training for layer in net.layers())


class TestSchedules:
    def test_cosine_endpoints(self):
        schedule = CosineDecay(0.1, total_steps=100)
        assert schedule(0) == pytest.approx(0.1)
        assert schedule(100) == pytest.approx(0.0, abs=1e-12)
        assert schedule(50) == pytest.approx(0.05)

    def test_cosine_monotone_decreasing(self):
        schedule = CosineDecay(0.1, total_steps=50)
        values = [schedule(i) for i in range(51)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_constant(self):
        assert ConstantLR(0.01)(123) == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineDecay(0.1, total_steps=0)
