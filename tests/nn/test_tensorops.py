"""Tests for im2col/col2im and padding."""

import numpy as np
import pytest

from repro.nn.tensorops import col2im, im2col, pad_same, unpad_same


class TestPadding:
    def test_pad_same_preserves_after_k3(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        assert pad_same(x, 3).shape == (2, 3, 10, 10)

    def test_pad_value(self):
        x = np.ones((1, 1, 2, 2))
        padded = pad_same(x, 3, value=-np.inf)
        assert padded[0, 0, 0, 0] == -np.inf

    def test_unpad_inverse(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        assert np.array_equal(unpad_same(pad_same(x, 3), 3), x)

    def test_k1_noop(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        assert pad_same(x, 1) is x


class TestIm2Col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        cols = im2col(x, 3)
        assert cols.shape == (2, 27, 16)

    def test_values_match_naive(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        cols = im2col(x, 3)
        # Column (i, j) holds the 3x3 patch at output position (i, j).
        patch = x[0, :, 0:3, 0:3].reshape(-1)
        assert np.allclose(cols[0, :, 0], patch)

    def test_stride(self, rng):
        x = rng.normal(size=(1, 1, 6, 6))
        cols = im2col(x, 2, stride=2)
        assert cols.shape == (1, 4, 9)

    def test_adjoint_property(self, rng):
        """col2im is the transpose of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.normal(size=(1, 2, 5, 5))
        y = rng.normal(size=(1, 2 * 9, 9))
        lhs = float(np.sum(im2col(x, 3) * y))
        rhs = float(np.sum(x * col2im(y, x.shape, 3)))
        assert lhs == pytest.approx(rhs)
