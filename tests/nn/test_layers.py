"""Tests for point-wise layers with numeric gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import Add, Concat, GlobalAvgPool, ReLU, Truncate


def numeric_input_grad(layer, inputs, input_index, dout, eps=1e-6):
    """Central differences of sum(forward * dout) w.r.t. one input."""
    x = inputs[input_index]
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for idx in range(flat.size):
        orig = flat[idx]
        flat[idx] = orig + eps
        plus = float(np.sum(layer.forward(*inputs) * dout))
        flat[idx] = orig - eps
        minus = float(np.sum(layer.forward(*inputs) * dout))
        flat[idx] = orig
        gflat[idx] = (plus - minus) / (2 * eps)
    return grad


class TestReLU:
    def test_forward(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        assert list(out[0]) == [0.0, 2.0]

    def test_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]))
        (dx,) = layer.backward(np.array([[5.0, 5.0]]))
        assert list(dx[0]) == [0.0, 5.0]


class TestTruncate:
    def test_slices_channels(self, rng):
        x = rng.normal(size=(2, 6, 3, 3))
        out = Truncate(4).forward(x)
        assert out.shape == (2, 4, 3, 3)
        assert np.array_equal(out, x[:, :4])

    def test_backward_zero_pads(self, rng):
        layer = Truncate(2)
        x = rng.normal(size=(1, 4, 2, 2))
        layer.forward(x)
        (dx,) = layer.backward(np.ones((1, 2, 2, 2)))
        assert dx.shape == x.shape
        assert np.all(dx[:, 2:] == 0)

    def test_cannot_grow(self, rng):
        with pytest.raises(ValueError):
            Truncate(8).forward(rng.normal(size=(1, 4, 2, 2)))


class TestAdd:
    def test_sums_with_truncation(self, rng):
        layer = Add(channels=3)
        a = rng.normal(size=(1, 3, 2, 2))
        b = rng.normal(size=(1, 5, 2, 2))
        out = layer.forward(a, b)
        assert np.allclose(out, a + b[:, :3])

    def test_backward_numeric(self, rng):
        layer = Add(channels=2)
        a = rng.normal(size=(1, 2, 2, 2))
        b = rng.normal(size=(1, 3, 2, 2))
        dout = rng.normal(size=(1, 2, 2, 2))
        layer.forward(a, b)
        grads = layer.backward(dout)
        for k, x in enumerate((a, b)):
            numeric = numeric_input_grad(layer, [a, b], k, dout)
            assert np.allclose(grads[k], numeric, atol=1e-6)


class TestConcat:
    def test_forward_channel_sum(self, rng):
        a = rng.normal(size=(1, 2, 2, 2))
        b = rng.normal(size=(1, 3, 2, 2))
        assert Concat().forward(a, b).shape == (1, 5, 2, 2)

    def test_backward_splits(self, rng):
        layer = Concat()
        a = rng.normal(size=(1, 2, 2, 2))
        b = rng.normal(size=(1, 3, 2, 2))
        layer.forward(a, b)
        dout = rng.normal(size=(1, 5, 2, 2))
        da, db = layer.backward(dout)
        assert np.array_equal(da, dout[:, :2])
        assert np.array_equal(db, dout[:, 2:])


class TestGlobalAvgPool:
    def test_forward(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = GlobalAvgPool().forward(x)
        assert out.shape == (2, 3)
        assert np.allclose(out, x.mean(axis=(2, 3)))

    def test_backward_uniform(self, rng):
        layer = GlobalAvgPool()
        x = rng.normal(size=(1, 2, 2, 2))
        layer.forward(x)
        (dx,) = layer.backward(np.array([[4.0, 8.0]]))
        assert np.allclose(dx[0, 0], 1.0)
        assert np.allclose(dx[0, 1], 2.0)
