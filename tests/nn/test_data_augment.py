"""Tests for the synthetic dataset and augmentation."""

import numpy as np
import pytest

from repro.nn.augment import augment_batch
from repro.nn.data import ImageDataset, synthetic_cifar
from repro.nn.dense import Dense
from repro.nn.loss import SoftmaxCrossEntropy


class TestDataset:
    def test_shapes(self):
        train, test = synthetic_cifar(n_train=64, n_test=16, n_classes=5, size=16)
        assert train.images.shape == (64, 3, 16, 16)
        assert test.labels.shape == (16,)
        assert set(np.unique(train.labels)) <= set(range(5))

    def test_deterministic(self):
        a, _ = synthetic_cifar(n_train=8, n_test=4, seed=3)
        b, _ = synthetic_cifar(n_train=8, n_test=4, seed=3)
        assert np.array_equal(a.images, b.images)

    def test_classes_are_separable(self):
        """Same-class samples are closer than cross-class samples."""
        train, _ = synthetic_cifar(n_train=200, n_test=4, n_classes=2, size=8, seed=0)
        cls0 = train.images[train.labels == 0]
        cls1 = train.images[train.labels == 1]
        within = np.linalg.norm(cls0[0] - cls0[1])
        across = np.linalg.norm(cls0[0] - cls1[0])
        assert across > within

    def test_batches_cover_everything(self, rng):
        ds = ImageDataset(np.zeros((10, 1, 2, 2)), np.arange(10))
        seen = []
        for images, labels in ds.batches(3, rng):
            seen.extend(labels.tolist())
        assert sorted(seen) == list(range(10))

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ImageDataset(np.zeros((3, 1, 2, 2)), np.zeros(4, dtype=int))


class TestAugment:
    def test_shape_preserved(self, rng):
        x = rng.normal(size=(4, 3, 16, 16))
        assert augment_batch(x, rng).shape == x.shape

    def test_deterministic_given_rng(self):
        x = np.random.default_rng(0).normal(size=(4, 3, 8, 8))
        a = augment_batch(x, np.random.default_rng(1))
        b = augment_batch(x, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_content_comes_from_padded_source(self, rng):
        """Every augmented pixel is either zero (pad) or an original pixel."""
        x = rng.normal(size=(2, 1, 8, 8))
        out = augment_batch(x, rng, pad=2)
        original = set(np.round(x.reshape(-1), 9)) | {0.0}
        assert set(np.round(out.reshape(-1), 9)) <= original


class TestLossAndDense:
    def test_dense_gradcheck(self, rng):
        dense = Dense(4, 3, rng)
        loss = SoftmaxCrossEntropy()
        x = rng.normal(size=(5, 4))
        y = np.array([0, 1, 2, 1, 0])

        def f():
            return loss.forward(dense.forward(x), y)

        dense.zero_grads()
        f()
        dense.backward(loss.backward())
        eps = 1e-6
        flat = dense.params["weight"].reshape(-1)
        g = dense.grads["weight"].reshape(-1)
        for idx in rng.choice(flat.size, size=4, replace=False):
            orig = flat[idx]
            flat[idx] = orig + eps
            plus = f()
            flat[idx] = orig - eps
            minus = f()
            flat[idx] = orig
            assert (plus - minus) / (2 * eps) == pytest.approx(g[idx], rel=1e-4, abs=1e-8)

    def test_ce_loss_of_uniform_logits(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((2, 4)), np.array([0, 3]))
        assert value == pytest.approx(np.log(4))

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert SoftmaxCrossEntropy.accuracy(logits, np.array([0, 0])) == 0.5
