"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, main
from repro.experiments.presets import get_preset, list_presets


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "BRAM" in out and "Total" in out

    def test_run_validation_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "v.md"
        assert main(["run", "validation", "--out", str(out_file)]) == 0
        assert "mean error" in out_file.read_text()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_scale_flag_accepted(self, capsys):
        assert main(["run", "table1", "--scale", "smoke"]) == 0


class TestStudyFlags:
    def test_scenario_rejected_for_non_study_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "table1", "--scenario", "unconstrained"])

    def test_batch_size_rejected_for_non_study_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "table1", "--batch-size", "8"])

    def test_unknown_scenario_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig5", "--scenario", "bogus"])

    def test_bad_batch_size_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig5", "--batch-size", "0"])


class TestStudyCommand:
    def test_list_names_every_preset(self, capsys):
        assert main(["study", "list"]) == 0
        out = capsys.readouterr().out
        for name in list_presets():
            assert name in out

    def test_show_prints_resolved_spec(self, capsys):
        assert main(["study", "show", "fig5"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown == get_preset("fig5").to_dict()

    def test_show_applies_overrides(self, capsys):
        assert main(
            ["study", "show", "fig5", "--set", "execution.batch_size=16"]
        ) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["execution"]["batch_size"] == 16

    def test_show_every_shipped_preset(self, capsys):
        for name in list_presets():
            assert main(["study", "show", name]) == 0
            json.loads(capsys.readouterr().out)

    def test_run_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "tiny.json"
        spec_file.write_text(
            get_preset("smoke").with_overrides(
                {"name": "tiny-cli"}
            ).to_json()
        )
        out_file = tmp_path / "report.md"
        assert main(
            ["study", "run", str(spec_file), "--out", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "study tiny-cli" in out
        assert "random" in out
        assert out_file.read_text().startswith("## study tiny-cli")

    def test_run_preset_with_override(self, capsys):
        assert main(
            ["study", "run", "smoke", "--set", "execution.num_steps=3"]
        ) == 0
        assert "study smoke" in capsys.readouterr().out

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["study", "run", "fig99"])

    def test_bad_override_path_rejected(self):
        with pytest.raises(SystemExit):
            main(["study", "show", "fig5", "--set", "execution.bogus=1"])

    def test_invalid_override_value_rejected(self):
        with pytest.raises(SystemExit):
            main(["study", "show", "fig5", "--set", "strategies.0.name=nope"])

    def test_study_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["study"])
