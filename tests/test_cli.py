"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "BRAM" in out and "Total" in out

    def test_run_validation_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "v.md"
        assert main(["run", "validation", "--out", str(out_file)]) == 0
        assert "mean error" in out_file.read_text()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_scale_flag_accepted(self, capsys):
        assert main(["run", "table1", "--scale", "smoke"]) == 0


class TestStudyFlags:
    def test_scenario_rejected_for_non_study_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "table1", "--scenario", "unconstrained"])

    def test_batch_size_rejected_for_non_study_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "table1", "--batch-size", "8"])

    def test_unknown_scenario_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig5", "--scenario", "bogus"])

    def test_bad_batch_size_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig5", "--batch-size", "0"])
