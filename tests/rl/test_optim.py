"""Tests for RL optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.rl.optim import SGD, Adam, clip_grad_norm


class TestClip:
    def test_no_clip_under_norm(self):
        grads = {"a": np.array([3.0, 4.0])}
        norm = clip_grad_norm(grads, max_norm=10.0)
        assert norm == pytest.approx(5.0)
        assert np.allclose(grads["a"], [3.0, 4.0])

    def test_clips_to_max(self):
        grads = {"a": np.array([3.0, 4.0])}
        clip_grad_norm(grads, max_norm=1.0)
        assert np.linalg.norm(grads["a"]) == pytest.approx(1.0, rel=1e-6)

    def test_global_norm_across_params(self):
        grads = {"a": np.array([3.0]), "b": np.array([4.0])}
        assert clip_grad_norm(grads, max_norm=100.0) == pytest.approx(5.0)


class TestSGD:
    def test_plain_step(self):
        opt = SGD(lr=0.5)
        updates = opt.compute_updates({"w": np.array([2.0])})
        assert updates["w"][0] == pytest.approx(-1.0)

    def test_momentum_accumulates(self):
        opt = SGD(lr=1.0, momentum=0.5)
        g = {"w": np.array([1.0])}
        first = opt.compute_updates(g)["w"][0]
        second = opt.compute_updates(g)["w"][0]
        assert first == pytest.approx(-1.0)
        assert second == pytest.approx(-1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)


class TestAdam:
    def test_first_step_magnitude(self):
        opt = Adam(lr=0.1)
        updates = opt.compute_updates({"w": np.array([5.0])})
        # Bias-corrected first step has magnitude ~lr.
        assert updates["w"][0] == pytest.approx(-0.1, rel=1e-3)

    def test_direction_opposes_gradient(self, rng):
        opt = Adam(lr=0.01)
        grad = rng.normal(size=10)
        updates = opt.compute_updates({"w": grad})
        assert np.all(np.sign(updates["w"]) == -np.sign(grad))

    def test_state_per_parameter(self):
        opt = Adam(lr=0.1)
        opt.compute_updates({"a": np.ones(2), "b": np.ones(3)})
        assert set(opt._m) == {"a", "b"}

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam(lr=-0.1)
