"""Tests for the sequential controller policy."""

import numpy as np
import pytest

from repro.rl.policy import SequencePolicy


@pytest.fixture
def policy():
    return SequencePolicy([2, 3, 4], hidden_size=16, embedding_size=8, seed=0)


class TestSampling:
    def test_actions_within_vocab(self, policy, rng):
        for _ in range(20):
            sample = policy.sample(rng)
            assert all(0 <= a < v for a, v in zip(sample.actions, policy.vocab_sizes))

    def test_log_prob_matches_action_log_prob(self, policy, rng):
        sample = policy.sample(rng)
        assert policy.action_log_prob(sample.actions) == pytest.approx(sample.log_prob)

    def test_deterministic_given_rng(self, policy):
        a = policy.sample(np.random.default_rng(5)).actions
        b = policy.sample(np.random.default_rng(5)).actions
        assert a == b

    def test_greedy_picks_argmax(self, policy, rng):
        sample = policy.sample(rng, greedy=True)
        for t, action in enumerate(sample.actions):
            assert action == int(np.argmax(sample.probs[t]))

    def test_entropy_positive(self, policy, rng):
        assert policy.sample(rng).entropy > 0

    def test_greedy_is_deterministic(self, policy, rng):
        a = policy.sample(rng, greedy=True).actions
        b = policy.sample(rng, greedy=True).actions
        assert a == b


class TestMasking:
    def test_frozen_tokens_take_given_actions(self, policy, rng):
        mask = [True, False, True]
        frozen = [0, 2, 0]
        sample = policy.sample(rng, token_mask=mask, frozen_actions=frozen)
        assert sample.actions[1] == 2

    def test_frozen_tokens_excluded_from_log_prob(self, policy, rng):
        all_free = policy.sample(np.random.default_rng(1))
        mask = [False] * 3
        frozen = all_free.actions
        sample = policy.sample(rng, token_mask=mask, frozen_actions=frozen)
        assert sample.log_prob == 0.0
        assert sample.entropy == 0.0

    def test_mask_requires_frozen(self, policy, rng):
        with pytest.raises(ValueError):
            policy.sample(rng, token_mask=[True, True, True])


class TestParams:
    def test_param_count_positive(self, policy):
        assert policy.num_parameters() > 0

    def test_all_params_includes_lstm(self, policy):
        keys = set(policy.all_params())
        assert {"lstm_wx", "lstm_wh", "lstm_b", "start"} <= keys
        assert "head_w0" in keys and "emb0" in keys

    def test_last_token_has_no_embedding(self, policy):
        assert "emb2" not in policy.all_params()

    def test_apply_update_changes_params(self, policy, rng):
        before = policy.params["head_w0"].copy()
        updates = {"head_w0": np.ones_like(before)}
        policy.apply_update(updates)
        assert np.allclose(policy.params["head_w0"], before + 1.0)

    def test_empty_vocab_rejected(self):
        with pytest.raises(ValueError):
            SequencePolicy([])
