"""Tests for the sequential controller policy."""

import numpy as np
import pytest

from repro.rl.policy import SequencePolicy


@pytest.fixture
def policy():
    return SequencePolicy([2, 3, 4], hidden_size=16, embedding_size=8, seed=0)


class TestSampling:
    def test_actions_within_vocab(self, policy, rng):
        for _ in range(20):
            sample = policy.sample(rng)
            assert all(0 <= a < v for a, v in zip(sample.actions, policy.vocab_sizes))

    def test_log_prob_matches_action_log_prob(self, policy, rng):
        sample = policy.sample(rng)
        assert policy.action_log_prob(sample.actions) == pytest.approx(sample.log_prob)

    def test_deterministic_given_rng(self, policy):
        a = policy.sample(np.random.default_rng(5)).actions
        b = policy.sample(np.random.default_rng(5)).actions
        assert a == b

    def test_greedy_picks_argmax(self, policy, rng):
        sample = policy.sample(rng, greedy=True)
        for t, action in enumerate(sample.actions):
            assert action == int(np.argmax(sample.probs[t]))

    def test_entropy_positive(self, policy, rng):
        assert policy.sample(rng).entropy > 0

    def test_greedy_is_deterministic(self, policy, rng):
        a = policy.sample(rng, greedy=True).actions
        b = policy.sample(rng, greedy=True).actions
        assert a == b


class TestMasking:
    def test_frozen_tokens_take_given_actions(self, policy, rng):
        mask = [True, False, True]
        frozen = [0, 2, 0]
        sample = policy.sample(rng, token_mask=mask, frozen_actions=frozen)
        assert sample.actions[1] == 2

    def test_frozen_tokens_excluded_from_log_prob(self, policy, rng):
        all_free = policy.sample(np.random.default_rng(1))
        mask = [False] * 3
        frozen = all_free.actions
        sample = policy.sample(rng, token_mask=mask, frozen_actions=frozen)
        assert sample.log_prob == 0.0
        assert sample.entropy == 0.0

    def test_mask_requires_frozen(self, policy, rng):
        with pytest.raises(ValueError):
            policy.sample(rng, token_mask=[True, True, True])


class TestParams:
    def test_param_count_positive(self, policy):
        assert policy.num_parameters() > 0

    def test_all_params_includes_lstm(self, policy):
        keys = set(policy.all_params())
        assert {"lstm_wx", "lstm_wh", "lstm_b", "start"} <= keys
        assert "head_w0" in keys and "emb0" in keys

    def test_last_token_has_no_embedding(self, policy):
        assert "emb2" not in policy.all_params()

    def test_apply_update_changes_params(self, policy, rng):
        before = policy.params["head_w0"].copy()
        updates = {"head_w0": np.ones_like(before)}
        policy.apply_update(updates)
        assert np.allclose(policy.params["head_w0"], before + 1.0)

    def test_empty_vocab_rejected(self):
        with pytest.raises(ValueError):
            SequencePolicy([])


class TestSampleBatch:
    def test_batch_of_one_is_bit_identical_to_sample(self, policy):
        single = policy.sample(np.random.default_rng(3))
        batch = policy.sample_batch(np.random.default_rng(3), 1)
        assert batch.actions_list(0) == single.actions
        assert batch.log_probs[0] == single.log_prob
        assert batch.entropies[0] == single.entropy
        for t in range(len(policy.vocab_sizes)):
            assert np.array_equal(batch.probs[t][0], single.probs[t])
            assert np.array_equal(batch.hiddens[t], single.hiddens[t])

    def test_batch_shapes_and_vocab_ranges(self, policy):
        rng = np.random.default_rng(0)
        batch = policy.sample_batch(rng, 9)
        assert batch.actions.shape == (9, 3)
        assert batch.log_probs.shape == (9,)
        for t, vocab in enumerate(policy.vocab_sizes):
            assert batch.probs[t].shape == (9, vocab)
            acts = batch.actions[:, t]
            assert np.all((0 <= acts) & (acts < vocab))

    def test_batched_log_probs_match_action_log_prob(self, policy):
        rng = np.random.default_rng(1)
        batch = policy.sample_batch(rng, 6)
        for i in range(6):
            assert policy.action_log_prob(batch.actions_list(i)) == pytest.approx(
                float(batch.log_probs[i])
            )

    def test_rejects_nonpositive_batch(self, policy):
        with pytest.raises(ValueError):
            policy.sample_batch(np.random.default_rng(0), 0)

    def test_batch_sampling_follows_policy_distribution(self, policy):
        """Vectorized inverse-CDF draws hit every probable action."""
        rng = np.random.default_rng(2)
        batch = policy.sample_batch(rng, 512)
        for t, vocab in enumerate(policy.vocab_sizes):
            counts = np.bincount(batch.actions[:, t], minlength=vocab)
            expected = batch.probs[t].mean(axis=0) * len(batch)
            # loose sanity: every action with >5% mass appears
            assert np.all(counts[expected > 25] > 0)


class TestBackwardBatch:
    def _as_batch(self, policy, samples):
        """Pack legacy PolicySamples into one PolicyBatch."""
        from repro.rl.lstm import LSTMCache
        from repro.rl.policy import PolicyBatch

        T = len(policy.vocab_sizes)
        caches = []
        for t in range(T):
            fields = {}
            for name in ("x", "h_prev", "c_prev", "i", "f", "g", "o", "c"):
                fields[name] = np.concatenate(
                    [getattr(s.caches[t], name) for s in samples], axis=0
                )
            caches.append(LSTMCache(**fields))
        return PolicyBatch(
            actions=np.array([s.actions for s in samples]),
            log_probs=np.array([s.log_prob for s in samples]),
            entropies=np.array([s.entropy for s in samples]),
            caches=caches,
            hiddens=[
                np.concatenate([s.hiddens[t] for s in samples], axis=0)
                for t in range(T)
            ],
            probs=[
                np.stack([s.probs[t] for s in samples], axis=0) for t in range(T)
            ],
        )

    def test_batch_of_one_matches_backward_exactly(self, policy, rng):
        sample = policy.sample(rng)
        legacy = policy.backward(sample, 0.37, entropy_beta=0.05)
        batch = self._as_batch(policy, [sample])
        batched = policy.backward_batch(batch, np.array([0.37]), entropy_beta=0.05)
        for key, grad in legacy.items():
            assert np.array_equal(batched[key], grad), key

    def test_mean_gradient_property(self, policy, rng):
        """backward_batch == mean of per-rollout backward gradients."""
        samples = [policy.sample(rng) for _ in range(5)]
        advantages = np.array([0.5, -0.2, 0.9, 0.0, -1.1])
        batch = self._as_batch(policy, samples)
        batched = policy.backward_batch(batch, advantages, entropy_beta=0.03)
        manual = policy.zero_grads()
        for sample, adv in zip(samples, advantages):
            grads = policy.backward(sample, float(adv), entropy_beta=0.03)
            for key in manual:
                manual[key] += grads[key]
        for key in manual:
            assert np.allclose(batched[key], manual[key] / 5, atol=1e-12), key

    def test_advantage_length_checked(self, policy, rng):
        batch = policy.sample_batch(rng, 3)
        with pytest.raises(ValueError):
            policy.backward_batch(batch, np.zeros(2))
