"""Tests for RL numeric primitives."""

import numpy as np
import pytest

from repro.rl.functional import entropy, log_softmax, one_hot, sigmoid, softmax, xavier_uniform


class TestSoftmax:
    def test_sums_to_one(self, rng):
        p = softmax(rng.normal(size=(4, 7)))
        assert np.allclose(p.sum(axis=-1), 1.0)

    def test_stable_for_large_logits(self):
        p = softmax(np.array([1000.0, 1000.0]))
        assert np.allclose(p, 0.5)

    def test_log_softmax_consistent(self, rng):
        logits = rng.normal(size=10)
        assert np.allclose(log_softmax(logits), np.log(softmax(logits)))

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=5)
        assert np.allclose(softmax(logits), softmax(logits + 100.0))


class TestSigmoid:
    def test_range(self, rng):
        out = sigmoid(rng.normal(size=100) * 50)
        assert np.all((out >= 0) & (out <= 1))

    def test_extremes_stable(self):
        assert sigmoid(np.array([-1e4]))[0] == pytest.approx(0.0)
        assert sigmoid(np.array([1e4]))[0] == pytest.approx(1.0)

    def test_symmetry(self):
        x = np.array([1.7])
        assert sigmoid(x)[0] + sigmoid(-x)[0] == pytest.approx(1.0)


class TestMisc:
    def test_one_hot(self):
        v = one_hot(2, 4)
        assert list(v) == [0, 0, 1, 0]

    def test_entropy_uniform_is_max(self):
        uniform = np.full(4, 0.25)
        peaked = np.array([0.97, 0.01, 0.01, 0.01])
        assert entropy(uniform) == pytest.approx(np.log(4))
        assert entropy(peaked) < entropy(uniform)

    def test_entropy_nonnegative(self):
        assert entropy(np.array([1.0, 0.0])) >= 0

    def test_xavier_bounds(self, rng):
        w = xavier_uniform(rng, (64, 32))
        bound = np.sqrt(6.0 / (64 + 32))
        assert np.all(np.abs(w) <= bound)
        assert w.shape == (64, 32)
