"""Finite-difference verification of the policy gradients."""

import numpy as np
import pytest

from repro.rl.gradcheck import max_relative_error, numeric_gradients, policy_loss
from repro.rl.policy import SequencePolicy


@pytest.fixture
def policy():
    return SequencePolicy([2, 2, 3, 5], hidden_size=12, embedding_size=6, seed=3)


class TestGradients:
    def test_plain_reinforce(self, policy, rng):
        sample = policy.sample(rng)
        grads = policy.backward(sample, advantage=0.8)
        numeric = numeric_gradients(policy, sample.actions, 0.8, rng=rng)
        assert max_relative_error(grads, numeric) < 1e-4

    def test_negative_advantage(self, policy, rng):
        sample = policy.sample(rng)
        grads = policy.backward(sample, advantage=-1.3)
        numeric = numeric_gradients(policy, sample.actions, -1.3, rng=rng)
        assert max_relative_error(grads, numeric) < 1e-4

    def test_with_entropy(self, policy, rng):
        sample = policy.sample(rng)
        grads = policy.backward(sample, advantage=0.4, entropy_beta=0.05)
        numeric = numeric_gradients(policy, sample.actions, 0.4, 0.05, rng=rng)
        assert max_relative_error(grads, numeric) < 1e-4

    def test_with_mask(self, policy, rng):
        mask = [True, False, True, False]
        sample = policy.sample(rng, token_mask=mask, frozen_actions=[0, 1, 0, 2])
        grads = policy.backward(sample, advantage=0.6, token_mask=mask)
        numeric = numeric_gradients(policy, sample.actions, 0.6, 0.0, mask, rng=rng)
        assert max_relative_error(grads, numeric) < 1e-4

    def test_loss_value_consistent_with_sample(self, policy, rng):
        sample = policy.sample(rng)
        loss = policy_loss(policy, sample.actions, advantage=1.0)
        assert loss == pytest.approx(-sample.log_prob)

    def test_zero_advantage_no_reinforce_gradient(self, policy, rng):
        sample = policy.sample(rng)
        grads = policy.backward(sample, advantage=0.0)
        assert all(np.allclose(g, 0.0) for g in grads.values())
