"""Tests for the REINFORCE trainer."""

import numpy as np
import pytest

from repro.rl.policy import SequencePolicy
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer


@pytest.fixture
def trainer():
    policy = SequencePolicy([2, 3], hidden_size=12, embedding_size=6, seed=0)
    return ReinforceTrainer(policy, ReinforceConfig(learning_rate=0.05))


class TestBaseline:
    def test_initialized_to_first_reward(self, trainer, rng):
        sample = trainer.sample(rng)
        advantage = trainer.update(sample, reward=0.7)
        assert advantage == 0.0
        assert trainer.baseline == pytest.approx(0.7)

    def test_ema_update(self, trainer, rng):
        trainer.update(trainer.sample(rng), reward=1.0)
        trainer.update(trainer.sample(rng), reward=0.0)
        assert trainer.baseline == pytest.approx(0.95 * 1.0 + 0.05 * 0.0)

    def test_advantage_sign(self, trainer, rng):
        trainer.update(trainer.sample(rng), reward=0.5)
        advantage = trainer.update(trainer.sample(rng), reward=1.0)
        assert advantage > 0

    def test_update_counter(self, trainer, rng):
        trainer.update(trainer.sample(rng), 0.1)
        trainer.update(trainer.sample(rng), 0.1)
        assert trainer.num_updates == 2


class TestLearning:
    def test_learns_dense_bandit(self):
        policy = SequencePolicy([2, 2, 3, 3], hidden_size=24, embedding_size=12, seed=1)
        trainer = ReinforceTrainer(
            policy, ReinforceConfig(learning_rate=0.05, entropy_beta=0.01)
        )
        gen = np.random.default_rng(42)
        for _ in range(800):
            sample = trainer.sample(gen)
            reward = sum(1.0 for a in sample.actions if a == 0) / 4
            trainer.update(sample, reward)
        final = np.mean(
            [
                sum(1.0 for a in trainer.sample(gen).actions if a == 0) / 4
                for _ in range(50)
            ]
        )
        assert final > 0.8  # random policy scores ~0.42

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReinforceConfig(baseline_momentum=1.5)
        with pytest.raises(ValueError):
            ReinforceConfig(entropy_beta=-0.1)
