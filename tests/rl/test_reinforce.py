"""Tests for the REINFORCE trainer."""

import numpy as np
import pytest

from repro.rl.policy import SequencePolicy
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer


@pytest.fixture
def trainer():
    policy = SequencePolicy([2, 3], hidden_size=12, embedding_size=6, seed=0)
    return ReinforceTrainer(policy, ReinforceConfig(learning_rate=0.05))


class TestBaseline:
    def test_initialized_to_first_reward(self, trainer, rng):
        sample = trainer.sample(rng)
        advantage = trainer.update(sample, reward=0.7)
        assert advantage == 0.0
        assert trainer.baseline == pytest.approx(0.7)

    def test_ema_update(self, trainer, rng):
        trainer.update(trainer.sample(rng), reward=1.0)
        trainer.update(trainer.sample(rng), reward=0.0)
        assert trainer.baseline == pytest.approx(0.95 * 1.0 + 0.05 * 0.0)

    def test_advantage_sign(self, trainer, rng):
        trainer.update(trainer.sample(rng), reward=0.5)
        advantage = trainer.update(trainer.sample(rng), reward=1.0)
        assert advantage > 0

    def test_update_counter(self, trainer, rng):
        trainer.update(trainer.sample(rng), 0.1)
        trainer.update(trainer.sample(rng), 0.1)
        assert trainer.num_updates == 2


class TestLearning:
    def test_learns_dense_bandit(self):
        policy = SequencePolicy([2, 2, 3, 3], hidden_size=24, embedding_size=12, seed=1)
        trainer = ReinforceTrainer(
            policy, ReinforceConfig(learning_rate=0.05, entropy_beta=0.01)
        )
        gen = np.random.default_rng(42)
        for _ in range(800):
            sample = trainer.sample(gen)
            reward = sum(1.0 for a in sample.actions if a == 0) / 4
            trainer.update(sample, reward)
        final = np.mean(
            [
                sum(1.0 for a in trainer.sample(gen).actions if a == 0) / 4
                for _ in range(50)
            ]
        )
        assert final > 0.8  # random policy scores ~0.42

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReinforceConfig(baseline_momentum=1.5)
        with pytest.raises(ValueError):
            ReinforceConfig(entropy_beta=-0.1)


class TestUpdateBatch:
    def _fresh(self, seed=0):
        from repro.rl.policy import SequencePolicy

        policy = SequencePolicy([3, 4, 2], hidden_size=16, embedding_size=8, seed=seed)
        return policy, ReinforceTrainer(policy)

    def test_batch_of_one_bit_identical_to_update(self):
        rewards = [0.4, -0.3, 0.8, 0.1]
        pol_a, tr_a = self._fresh()
        rng = np.random.default_rng(7)
        for r in rewards:
            tr_a.update(tr_a.sample(rng), r)
        pol_b, tr_b = self._fresh()
        rng = np.random.default_rng(7)
        for r in rewards:
            tr_b.update_batch(tr_b.sample_batch(rng, 1), [r])
        assert tr_a.baseline == tr_b.baseline
        assert tr_a.num_updates == tr_b.num_updates
        for key, value in pol_a.all_params().items():
            assert np.array_equal(value, pol_b.all_params()[key]), key

    def test_baseline_recurrence_order_is_rollout_by_rollout(self):
        _, trainer = self._fresh()
        rng = np.random.default_rng(1)
        batch = trainer.sample_batch(rng, 3)
        advantages = trainer.update_batch(batch, [1.0, 2.0, 3.0])
        # First rollout sets the baseline; later ones see the EMA.
        assert advantages[0] == 0.0
        assert advantages[1] == pytest.approx(2.0 - 1.0)
        m = trainer.config.baseline_momentum
        b1 = m * 1.0 + (1 - m) * 2.0
        assert advantages[2] == pytest.approx(3.0 - b1)

    def test_one_optimizer_step_per_batch(self):
        _, trainer = self._fresh()
        rng = np.random.default_rng(2)
        trainer.update_batch(trainer.sample_batch(rng, 8), [0.1] * 8)
        assert trainer.num_updates == 1

    def test_reward_count_validated(self):
        _, trainer = self._fresh()
        rng = np.random.default_rng(3)
        batch = trainer.sample_batch(rng, 3)
        with pytest.raises(ValueError):
            trainer.update_batch(batch, [0.1, 0.2])
