"""Tests for the LSTM cell, including gradient checking."""

import numpy as np
import pytest

from repro.rl.lstm import LSTMCell, LSTMState


@pytest.fixture
def cell(rng):
    return LSTMCell(input_size=5, hidden_size=7, rng=rng)


class TestForward:
    def test_shapes(self, cell):
        state, cache = cell.forward(np.zeros((3, 5)), LSTMState.zeros(3, 7))
        assert state.h.shape == (3, 7)
        assert state.c.shape == (3, 7)

    def test_state_evolves(self, cell, rng):
        x = rng.normal(size=(1, 5))
        s1, _ = cell.forward(x, LSTMState.zeros(1, 7))
        s2, _ = cell.forward(x, s1)
        assert not np.allclose(s1.h, s2.h)

    def test_forget_bias_initialized(self, cell):
        hs = cell.hidden_size
        assert np.all(cell.params["b"][hs: 2 * hs] == 1.0)

    def test_bounded_outputs(self, cell, rng):
        state, _ = cell.forward(rng.normal(size=(2, 5)) * 10, LSTMState.zeros(2, 7))
        assert np.all(np.abs(state.h) <= 1.0)  # |o * tanh(c)| <= 1


class TestBackward:
    def test_gradient_check(self, rng):
        cell = LSTMCell(input_size=3, hidden_size=4, rng=rng)
        x = rng.normal(size=(2, 3))
        h0 = rng.normal(size=(2, 4))
        c0 = rng.normal(size=(2, 4))

        def loss():
            state, _ = cell.forward(x, LSTMState(h0.copy(), c0.copy()))
            return float(np.sum(state.h) + 0.5 * np.sum(state.c))

        state, cache = cell.forward(x, LSTMState(h0.copy(), c0.copy()))
        grads = cell.zero_grads()
        dx, dh0, dc0 = cell.backward(
            np.ones((2, 4)), 0.5 * np.ones((2, 4)), cache, grads
        )
        eps = 1e-6
        worst = 0.0
        for name, param in cell.params.items():
            flat = param.reshape(-1)
            gflat = grads[name].reshape(-1)
            for idx in rng.choice(flat.size, size=6, replace=False):
                orig = flat[idx]
                flat[idx] = orig + eps
                plus = loss()
                flat[idx] = orig - eps
                minus = loss()
                flat[idx] = orig
                numeric = (plus - minus) / (2 * eps)
                denom = max(abs(numeric), abs(gflat[idx]), 1e-8)
                worst = max(worst, abs(numeric - gflat[idx]) / denom)
        assert worst < 1e-5

    def test_input_gradient_check(self, rng):
        cell = LSTMCell(input_size=3, hidden_size=4, rng=rng)
        x = rng.normal(size=(1, 3))
        state0 = LSTMState.zeros(1, 4)
        state, cache = cell.forward(x, state0)
        grads = cell.zero_grads()
        dx, _, _ = cell.backward(np.ones((1, 4)), np.zeros((1, 4)), cache, grads)
        eps = 1e-6
        for j in range(3):
            xp = x.copy()
            xp[0, j] += eps
            plus = float(np.sum(cell.forward(xp, state0)[0].h))
            xm = x.copy()
            xm[0, j] -= eps
            minus = float(np.sum(cell.forward(xm, state0)[0].h))
            numeric = (plus - minus) / (2 * eps)
            assert numeric == pytest.approx(dx[0, j], rel=1e-4, abs=1e-7)
