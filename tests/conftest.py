"""Shared fixtures: small enumeration bundles, known cells, RNGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.space import AcceleratorSpace
from repro.experiments.common import load_bundle
from repro.nasbench.known_cells import KNOWN_CELLS
from repro.nasbench.skeleton import SkeletonConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def micro4_bundle():
    """Small enumerated joint space (<=4-vertex cells x 8640 configs)."""
    return load_bundle(max_vertices=4)


@pytest.fixture(scope="session")
def hw_space() -> AcceleratorSpace:
    return AcceleratorSpace()


@pytest.fixture(params=sorted(KNOWN_CELLS))
def known_cell(request):
    """Parametrized over resnet / googlenet / cod1 / cod2."""
    return KNOWN_CELLS[request.param]()


@pytest.fixture
def default_config() -> AcceleratorConfig:
    return AcceleratorConfig()


@pytest.fixture
def tiny_skeleton() -> SkeletonConfig:
    """A skeleton small enough for real numpy training in tests."""
    return SkeletonConfig(
        input_height=8,
        input_width=8,
        input_channels=2,
        stem_channels=4,
        num_stacks=2,
        cells_per_stack=1,
        num_classes=3,
    )


def sample_configs(n: int, seed: int = 0) -> list[AcceleratorConfig]:
    """Deterministic sample of accelerator configs for tests."""
    space = AcceleratorSpace()
    gen = np.random.default_rng(seed)
    return [space.config_at(int(i)) for i in gen.choice(space.size, size=n, replace=False)]
