"""Tests for the experiment harness (structure + fast invariants)."""

import numpy as np
import pytest

from repro.core.scenarios import unconstrained
from repro.experiments.ablations import run_punishment_ablation, run_random_ablation
from repro.experiments.common import Scale, load_bundle
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import best_accelerator_for, run_fig7
from repro.experiments.search_study import run_search_study, top_pareto_by_reward
from repro.experiments.table1 import PAPER_TABLE1, run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.validation import run_validation
from repro.nasbench.known_cells import resnet_cell
from repro.search.threshold_schedule import ThresholdRung
from repro.training.surrogate_trainer import SurrogateCifar100Trainer

TINY = Scale(name="tiny", search_steps=60, num_repeats=2, fig7_target_scale=0.05)


class TestScale:
    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert Scale.from_env().name == "smoke"

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            Scale.from_env()

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert Scale.from_env().name == "default"


class TestBundle:
    def test_memoized(self, micro4_bundle):
        assert load_bundle(max_vertices=4) is micro4_bundle

    def test_shapes_consistent(self, micro4_bundle):
        b = micro4_bundle
        assert b.latency_ms.shape == (len(b.database), b.space.size)
        assert b.accuracy.shape == (len(b.database),)
        assert b.area_mm2.shape == (b.space.size,)

    def test_bounds_cover_space(self, micro4_bundle):
        b = micro4_bundle
        assert b.bounds.latency_ms[0] <= b.latency_ms.min()
        assert b.bounds.latency_ms[1] >= b.latency_ms.max()

    def test_perf_per_area_shape(self, micro4_bundle):
        assert micro4_bundle.perf_per_area().shape == micro4_bundle.latency_ms.shape


class TestTable1:
    def test_totals_match_paper(self):
        result = run_table1()
        assert result.total_relative == pytest.approx(
            PAPER_TABLE1["total_relative"], rel=0.002
        )
        assert result.total_mm2 == pytest.approx(PAPER_TABLE1["total_mm2"], rel=0.005)

    def test_markdown_has_all_rows(self):
        text = run_table1().to_markdown()
        for token in ("CLB", "BRAM", "DSP", "Total"):
            assert token in text


class TestFig4:
    def test_pareto_fraction_tiny(self, micro4_bundle):
        result = run_fig4(micro4_bundle)
        assert result.pareto_fraction < 1e-3  # paper: <0.0001%

    def test_summary_and_rows(self, micro4_bundle):
        result = run_fig4(micro4_bundle)
        summary = result.summary()
        assert summary["num_pareto"] > 10
        assert summary["num_distinct_cells"] > 1
        assert summary["num_distinct_configs"] > 1
        assert len(result.scatter_rows()) > 5
        assert "Pareto points" in result.to_markdown()


class TestSearchStudy:
    @pytest.fixture(scope="class")
    def study(self, micro4_bundle):
        return run_search_study(micro4_bundle, TINY, master_seed=1)

    def test_grid_complete(self, study):
        assert set(study.outcomes) == {"unconstrained", "1-constraint", "2-constraints"}
        for by_strategy in study.outcomes.values():
            assert set(by_strategy) == {"combined", "phase", "separate"}

    def test_pareto_reference_sets(self, study):
        for scenario, rows in study.pareto_top100.items():
            assert len(rows) <= 100
            rewards = [r["reward"] for r in rows]
            assert rewards == sorted(rewards, reverse=True)

    def test_fig5_view(self, micro4_bundle, study):
        fig5 = run_fig5(study=study)
        hit = fig5.constraint_hit_rates()
        assert set(hit) == set(study.outcomes)
        text = fig5.to_markdown()
        assert "unconstrained" in text

    def test_fig6_view(self, study):
        fig6 = run_fig6(study=study)
        trace = fig6.trace("unconstrained", "combined")
        assert len(trace) == TINY.search_steps
        finals = fig6.final_rewards()
        assert "combined" in finals["unconstrained"]
        assert fig6.convergence_step("unconstrained", "combined") <= TINY.search_steps

    def test_top_pareto_respects_constraints(self, micro4_bundle):
        from repro.core.scenarios import two_constraints

        scenario = two_constraints(micro4_bundle.bounds)
        rows = top_pareto_by_reward(micro4_bundle, scenario, k=50)
        for row in rows:
            assert row["accuracy"] >= 92.0
            assert row["area_mm2"] <= 100.0


class TestFig7AndTables:
    @pytest.fixture(scope="class")
    def fig7(self):
        rungs = [ThresholdRung(2.0, 15, 60), ThresholdRung(16.0, 15, 60)]
        return run_fig7(scale=TINY, seed=1, rungs=rungs)

    def test_baselines_present(self, fig7):
        assert fig7.baselines["resnet"].accuracy == pytest.approx(72.9)
        assert fig7.baselines["googlenet"].accuracy == pytest.approx(71.5)

    def test_baseline_is_best_perf_area(self):
        trainer = SurrogateCifar100Trainer()
        point = best_accelerator_for(resnet_cell(), 72.9, "ResNet")
        assert point.perf_per_area > 10

    def test_scatter_rows(self, fig7):
        rows = fig7.scatter_rows()
        assert all(len(r) == 5 for r in rows)

    def test_gpu_ledger_positive(self, fig7):
        assert fig7.gpu_hours > 0
        assert fig7.unique_cells_trained > 0

    def test_table2_structure(self, fig7):
        table = run_table2(fig7)
        rows = table.rows()
        assert rows[0][0] == "ResNet Cell"
        assert rows[2][0] == "GoogLeNet Cell"
        assert "Paper Table II" in table.to_markdown()

    def test_table3_structure(self, fig7):
        table = run_table3(fig7)
        rows = table.rows()
        assert len(rows) == 5
        assert rows[0][2] == "(16, 64)"  # paper reference column


class TestValidationExperiment:
    def test_summary_near_paper(self):
        result = run_validation()
        summary = result.summary()
        assert summary["area_mean_error"] < 0.06
        assert summary["latency_accuracy"] > 0.7
        assert "ours" in result.to_markdown()


class TestAblations:
    def test_punishment_rows(self, micro4_bundle):
        rows = run_punishment_ablation(micro4_bundle, TINY, master_seed=0)
        assert len(rows) == 2
        assert {r.variant for r in rows} == {"punishment (paper)", "weak punishment"}

    def test_random_rows(self, micro4_bundle):
        rows = run_random_ablation(micro4_bundle, TINY, master_seed=0)
        assert {r.variant for r in rows} == {"combined (RL)", "random"}
        for row in rows:
            assert np.isfinite(row.best_reward)


class TestStudyScenarioNames:
    def test_scenario_names_with_slash_survive_the_grid(self, micro4_bundle):
        """Labels are opaque: registry/JSON names may contain '/'."""
        from repro.core.scenarios import make_scenario
        from repro.experiments.common import Scale
        from repro.experiments.search_study import run_search_study

        scenarios = {
            "edge/lowpower": lambda bounds=None: make_scenario(
                "edge/lowpower", (0.1, 0.8, 0.1), bounds
            )
        }
        study = run_search_study(
            micro4_bundle,
            Scale("tiny", 10, 1, 0.1),
            scenarios=scenarios,
        )
        assert set(study.outcomes) == {"edge/lowpower"}
        assert {"combined", "phase", "separate"} == set(
            study.outcomes["edge/lowpower"]
        )
