"""Registry-drift and round-trip suites for :mod:`repro.workloads`.

Mirrors tests/hw/test_platforms.py: every listed workload must
construct its encoding, describe itself as JSON, and stay compatible
with the accuracy-source and platform registries it names — so adding
a workload whose wiring is broken fails here by name.
"""

import json

import numpy as np
import pytest

from repro.core.evaluator import list_accuracy_sources
from repro.hw import list_platforms
from repro.workloads import (
    DEFAULT_WORKLOAD,
    WorkloadError,
    default_workload,
    get_workload,
    list_workloads,
    register_workload,
)


@pytest.fixture(scope="module")
def workloads():
    return {name: get_workload(name) for name in list_workloads()}


class TestRegistry:
    def test_builtin_workloads_registered(self):
        assert set(list_workloads()) >= {"cnn-cell", "transformer"}

    def test_default_workload_is_the_reference(self):
        assert DEFAULT_WORKLOAD == "cnn-cell"
        assert default_workload().is_reference

    def test_unknown_workload_names_registered(self):
        with pytest.raises(WorkloadError, match="registered:"):
            get_workload("diffusion")

    def test_duplicate_registration_refused(self):
        cnn = get_workload("cnn-cell")
        with pytest.raises(WorkloadError, match="already registered"):
            register_workload(
                "cnn-cell",
                description="dupe",
                encoding_factory=cnn.encoding_factory,
                compile=cnn.compile,
                default_accuracy_source=cnn.default_accuracy_source,
                accuracy_sources=cnn.accuracy_sources,
                platforms=cnn.platforms,
            )

    def test_exactly_one_reference_workload(self, workloads):
        references = [n for n, w in workloads.items() if w.is_reference]
        assert references == ["cnn-cell"]


class TestRegistryDrift:
    """Every listed workload must wire into the other registries."""

    def test_encodings_construct_and_describe(self, workloads):
        for name, workload in workloads.items():
            encoding = workload.encoding()
            assert encoding.num_tokens == len(encoding.vocab_sizes), name
            assert all(v > 0 for v in encoding.vocab_sizes), name
            json.dumps(workload.describe())

    def test_accuracy_sources_exist(self, workloads):
        registered = set(list_accuracy_sources())
        for name, workload in workloads.items():
            assert workload.default_accuracy_source in workload.accuracy_sources
            for source in workload.accuracy_sources:
                assert source in registered, f"{name}: {source}"

    def test_platforms_exist(self, workloads):
        registered = set(list_platforms())
        for name, workload in workloads.items():
            assert workload.platforms, name
            for platform in workload.platforms:
                assert platform in registered, f"{name}: {platform}"

    def test_supports_platform_strips_surrogate_prefix(self, workloads):
        for name, workload in workloads.items():
            base = workload.platforms[0]
            assert workload.supports_platform(base), name
            assert workload.supports_platform(f"surrogate:{base}"), name
            assert not workload.supports_platform("tpu-v9"), name

    def test_decode_encode_round_trip(self, workloads):
        # decode(encode(spec)) must reproduce the spec's hash — exact
        # action equality is not required (cell decoding canonicalizes
        # isomorphic graphs).
        rng = np.random.default_rng(3)
        for name, workload in workloads.items():
            encoding = workload.encoding()
            seen_valid = 0
            for _ in range(64):
                spec = encoding.decode(encoding.random_actions(rng))
                if not spec.valid:
                    continue
                seen_valid += 1
                re_spec = encoding.decode(encoding.encode(spec))
                assert re_spec.spec_hash() == spec.spec_hash(), name
            assert seen_valid > 0, name

    def test_compile_produces_ops(self, workloads):
        from repro.nasbench.skeleton import CIFAR10_SKELETON

        rng = np.random.default_rng(4)
        for name, workload in workloads.items():
            encoding = workload.encoding()
            spec = None
            while spec is None or not spec.valid:
                spec = encoding.decode(encoding.random_actions(rng))
            ir = workload.compile(spec, CIFAR10_SKELETON)
            assert len(ir.ops) > 0, name


class TestRegistrationValidation:
    def _kwargs(self, **overrides):
        cnn = get_workload("cnn-cell")
        kwargs = dict(
            description="probe",
            encoding_factory=cnn.encoding_factory,
            compile=cnn.compile,
            default_accuracy_source="database",
            accuracy_sources=("database",),
            platforms=("dac2020",),
        )
        kwargs.update(overrides)
        return kwargs

    def test_default_source_must_be_listed(self):
        with pytest.raises(WorkloadError, match="default accuracy source"):
            register_workload(
                "probe-bad-source",
                **self._kwargs(default_accuracy_source="surrogate"),
            )

    def test_platforms_must_be_nonempty(self):
        with pytest.raises(WorkloadError, match="platform"):
            register_workload("probe-no-platforms", **self._kwargs(platforms=()))
