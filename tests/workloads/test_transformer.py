"""The transformer workload: spec/encoding semantics, analytic
accuracy, and the end-to-end bert-u50 two-tier study."""

import json

import numpy as np
import pytest

from repro.hw.gemm import CANONICAL_TRANSFORMERS, TRANSFORMER_PARAMETER_VALUES
from repro.nasbench.model_spec import InvalidSpecError
from repro.workloads import (
    TransformerEncoding,
    TransformerSpec,
    analytic_accuracy,
    compile_transformer_ops,
)


class TestTransformerSpec:
    def test_valid_spec_hash_and_params(self):
        spec = TransformerSpec(depth=4, heads=4, hidden=256, ffn_ratio=4,
                               seq_len=128)
        assert spec.valid
        assert spec.spec_hash() == "tfm-d4-h4-w256-f4-s128"
        assert spec.head_dim == 64
        assert spec.matrix.shape == (1, 5)

    def test_indivisible_heads_invalid_not_raising(self):
        spec = TransformerSpec(depth=4, heads=12, hidden=256, ffn_ratio=4,
                               seq_len=128)
        assert not spec.valid
        assert "divisible" in spec.invalid_reason
        with pytest.raises(InvalidSpecError):
            spec.spec_hash()
        with pytest.raises(InvalidSpecError):
            compile_transformer_ops(spec)

    def test_off_domain_value_invalid(self):
        spec = TransformerSpec(depth=3, heads=4, hidden=256, ffn_ratio=4,
                               seq_len=128)
        assert not spec.valid
        assert "depth" in spec.invalid_reason

    def test_dict_round_trip(self):
        spec = TransformerSpec(depth=12, heads=12, hidden=768, ffn_ratio=4,
                               seq_len=384)
        data = json.loads(json.dumps(spec.to_dict()))
        assert TransformerSpec.from_dict(data) == spec


class TestTransformerEncoding:
    def test_space_size_and_vocab(self):
        encoding = TransformerEncoding()
        assert encoding.num_tokens == 5
        assert encoding.space_size == 2250

    def test_decode_rejects_out_of_range_actions(self):
        encoding = TransformerEncoding()
        with pytest.raises(ValueError, match="out of range"):
            encoding.decode([0, 0, 99, 0, 0])
        with pytest.raises(ValueError, match="expected 5"):
            encoding.decode([0, 0])

    def test_in_range_invalid_combo_decodes_invalid(self):
        encoding = TransformerEncoding()
        heads = TRANSFORMER_PARAMETER_VALUES["heads"].index(12)
        hidden = TRANSFORMER_PARAMETER_VALUES["hidden"].index(256)
        spec = encoding.decode([0, heads, hidden, 0, 0])
        assert not spec.valid

    def test_exhaustive_decode_matches_space_size(self):
        encoding = TransformerEncoding()
        valid = 0
        for flat in range(encoding.space_size):
            actions = []
            rest = flat
            for vocab in reversed(encoding.vocab_sizes):
                actions.append(rest % vocab)
                rest //= vocab
            spec = encoding.decode(list(reversed(actions)))
            valid += spec.valid
        # hidden % heads == 0 keeps 27 of the 30 (heads, hidden) pairs.
        assert valid == 27 * 5 * 3 * 5


class TestAnalyticAccuracy:
    def test_invalid_spec_scores_none(self):
        spec = TransformerSpec(depth=4, heads=12, hidden=256, ffn_ratio=4,
                               seq_len=128)
        assert analytic_accuracy(spec) is None

    def test_monotone_in_capacity(self):
        small = analytic_accuracy(
            TransformerSpec(depth=2, heads=2, hidden=128, ffn_ratio=2,
                            seq_len=128)
        )
        large = analytic_accuracy(
            TransformerSpec(depth=12, heads=12, hidden=768, ffn_ratio=4,
                            seq_len=128)
        )
        assert small < large

    def test_canonical_points_pinned(self):
        # Drift guard: these feed cached evaluations and goldens, so a
        # formula change must be a conscious decision.
        expected = {
            "bert-tiny": 69.85,
            "bert-mini": 78.04,
            "bert-small": 84.56,
            "bert-base": 88.45,
        }
        for name, params in CANONICAL_TRANSFORMERS:
            score = analytic_accuracy(TransformerSpec(**params))
            assert score == pytest.approx(expected[name], abs=0.01), name

    def test_bounded_by_floor_and_ceiling(self):
        encoding = TransformerEncoding()
        rng = np.random.default_rng(11)
        for _ in range(128):
            spec = encoding.decode(encoding.random_actions(rng))
            if not spec.valid:
                continue
            score = analytic_accuracy(spec)
            assert 62.0 < score < 91.0


class TestCompile:
    def test_gemm_count_scales_with_depth(self):
        shallow = compile_transformer_ops(
            TransformerSpec(depth=2, heads=2, hidden=128, ffn_ratio=4,
                            seq_len=128)
        )
        deep = compile_transformer_ops(
            TransformerSpec(depth=4, heads=2, hidden=128, ffn_ratio=4,
                            seq_len=128)
        )
        assert len(deep.ops) == 2 * len(shallow.ops)

    def test_memoized_on_parameters(self):
        a = compile_transformer_ops(
            TransformerSpec(depth=2, heads=2, hidden=128, ffn_ratio=4,
                            seq_len=128)
        )
        b = compile_transformer_ops(
            TransformerSpec(depth=2, heads=2, hidden=128, ffn_ratio=4,
                            seq_len=128)
        )
        assert a is b


class TestBertU50Study:
    def test_two_tier_study_end_to_end(self):
        from repro.core.study import outcome_summary, run_study
        from repro.experiments.presets import get_preset

        spec = get_preset("bert-u50").with_overrides(
            {
                "execution.num_steps": 5,
                "execution.num_repeats": 1,
                "execution.exact_fraction": 0.5,
            }
        )
        summary = outcome_summary(run_study(spec))
        (by_strategy,) = summary.values()
        assert set(by_strategy) == {"random", "evolution"}
        for strategy, stats in by_strategy.items():
            assert stats["repeats"] == 1, strategy

    def test_exact_and_two_tier_rewards_are_exact_scores(self):
        # The surrogate tier only filters: every archived/reported
        # reward must come from the exact platform, so a two-tier run
        # at exact_fraction=1.0 equals the exact-only run bit for bit.
        from repro.core.study import outcome_summary, run_study
        from repro.experiments.presets import get_preset

        overrides = {
            "execution.num_steps": 4,
            "execution.num_repeats": 1,
        }
        two_tier = get_preset("bert-u50").with_overrides(
            {**overrides, "execution.exact_fraction": 1.0}
        )
        exact = get_preset("bert-u50").with_overrides(
            {**overrides, "execution.surrogate": False}
        )
        assert outcome_summary(run_study(two_tier)) == outcome_summary(
            run_study(exact)
        )
