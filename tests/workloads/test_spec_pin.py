"""Spec-pin: pre-workload StudySpec JSON stays byte-identical.

Every StudySpec serialized before the workload field existed has no
``"workload"`` key.  Those specs are pinned inside run ledgers (resume
refuses any edited spec), so loading one must resolve to the reference
``cnn-cell`` workload AND re-serialize without emitting the field —
otherwise every archived ledger would refuse to resume.
"""

import json

from repro.core.study import StudySpec
from repro.experiments.presets import get_preset, list_presets

#: A verbatim pre-PR spec dump (the fig5 preset as serialized before
#: the workload field existed — matches examples/study_fig5.json).
PRE_WORKLOAD_SPEC = {
    "name": "fig5",
    "strategies": [
        {"name": "combined"},
        {"name": "phase"},
        {"name": "separate"},
    ],
    "scenarios": ["unconstrained", "1-constraint", "2-constraints"],
    "evaluator": {"source": "database"},
}


class TestPreWorkloadSpecPin:
    def test_loads_as_cnn_cell(self):
        spec = StudySpec.from_dict(PRE_WORKLOAD_SPEC)
        assert spec.workload == "cnn-cell"

    def test_reserializes_without_workload_field(self):
        spec = StudySpec.from_dict(PRE_WORKLOAD_SPEC)
        assert "workload" not in spec.to_dict()

    def test_round_trip_is_byte_identical(self):
        before = json.dumps(
            StudySpec.from_dict(PRE_WORKLOAD_SPEC).to_dict(), sort_keys=True
        )
        after = json.dumps(
            StudySpec.from_dict(json.loads(before)).to_dict(), sort_keys=True
        )
        assert before == after

    def test_matches_the_live_fig5_preset(self):
        # The pre-PR dump and today's preset serialize identically —
        # the cnn-cell default changed nothing for archived specs.
        assert StudySpec.from_dict(PRE_WORKLOAD_SPEC) == get_preset("fig5")

    def test_only_non_default_workloads_serialize(self):
        for name in list_presets():
            spec = get_preset(name)
            emitted = spec.to_dict()
            if spec.workload == "cnn-cell":
                assert "workload" not in emitted, name
            else:
                assert emitted["workload"] == spec.workload, name

    def test_with_overrides_preserves_workload(self):
        spec = get_preset("bert-u50").with_overrides(
            {"execution.num_steps": 3}
        )
        assert spec.workload == "transformer"
