"""Tests for the greedy list scheduler (scalar + batch)."""

import numpy as np
import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.latency import LatencyModel
from repro.accelerator.scheduler import (
    ENGINES,
    batch_schedule,
    engine_of,
    schedule_network,
)
from repro.nasbench import ops as O
from repro.nasbench.compile import NetworkIR, compile_network
from repro.nasbench.known_cells import KNOWN_CELLS, googlenet_cell, resnet_cell
from repro.nasbench.skeleton import CIFAR10_SKELETON
from tests.conftest import sample_configs


class TestEngineAssignment:
    def test_conv3x3_engine(self):
        config = AcceleratorConfig(ratio_conv_engines=0.5)
        assert ENGINES[engine_of(O.KIND_CONV3X3, config)] == "conv3x3"
        assert ENGINES[engine_of(O.KIND_STEM, config)] == "conv3x3"

    def test_conv1x1_dual_vs_general(self):
        dual = AcceleratorConfig(ratio_conv_engines=0.5)
        general = AcceleratorConfig(ratio_conv_engines=1.0)
        assert ENGINES[engine_of(O.KIND_CONV1X1, dual)] == "conv1x1"
        assert ENGINES[engine_of(O.KIND_CONV1X1, general)] == "conv3x3"

    def test_pool_fallback_to_cpu(self):
        on = AcceleratorConfig(pool_enable=True)
        off = AcceleratorConfig(pool_enable=False)
        assert ENGINES[engine_of(O.KIND_MAXPOOL3X3, on)] == "pool"
        assert ENGINES[engine_of(O.KIND_MAXPOOL3X3, off)] == "cpu"

    def test_glue_on_cpu(self):
        config = AcceleratorConfig()
        for kind in (O.KIND_ADD, O.KIND_CONCAT, O.KIND_GAP, O.KIND_DENSE):
            assert ENGINES[engine_of(kind, config)] == "cpu"


class TestScalarSchedule:
    def test_latency_positive(self, known_cell, default_config):
        ir = compile_network(known_cell, CIFAR10_SKELETON)
        result = schedule_network(ir, default_config)
        assert result.latency_s > 0
        assert result.latency_ms == pytest.approx(result.latency_s * 1e3)

    def test_makespan_at_least_total_work_per_engine(self, default_config):
        ir = compile_network(resnet_cell(), CIFAR10_SKELETON)
        result = schedule_network(ir, default_config)
        for name, busy in result.engine_busy_s.items():
            assert result.latency_s >= busy - 1e-12, name

    def test_makespan_at_most_serial_sum(self, default_config):
        model = LatencyModel()
        ir = compile_network(resnet_cell(), CIFAR10_SKELETON)
        serial = sum(model.op_duration(op, default_config) for op in ir.ops)
        assert schedule_network(ir, default_config, model).latency_s <= serial + 1e-12

    def test_utilization_bounded(self, default_config):
        ir = compile_network(googlenet_cell(), CIFAR10_SKELETON)
        util = schedule_network(ir, default_config).utilization()
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in util.values())

    def test_precomputed_durations_respected(self, default_config):
        ir = compile_network(resnet_cell(), CIFAR10_SKELETON)
        durations = [1e-3] * len(ir.ops)
        result = schedule_network(ir, default_config, durations=durations)
        # All ops sequential on deps: chain at least as long as critical path.
        assert result.latency_s >= 1e-3

    def test_empty_network(self, default_config):
        result = schedule_network(NetworkIR(), default_config)
        assert result.latency_s == 0.0

    def test_dual_engine_helps_parallel_cells(self):
        """GoogLeNet's parallel 3x3/1x1 branches overlap on dual engines."""
        ir = compile_network(googlenet_cell(), CIFAR10_SKELETON)
        model = LatencyModel()
        single = AcceleratorConfig(ratio_conv_engines=1.0, filter_par=16, pixel_par=32)
        dual = AcceleratorConfig(ratio_conv_engines=0.5, filter_par=16, pixel_par=32)
        lat_single = schedule_network(ir, single, model).latency_s
        lat_dual = schedule_network(ir, dual, model).latency_s
        # Dual engines split DSPs, yet latency should not degrade much
        # (and often improves) thanks to branch overlap.
        assert lat_dual < lat_single * 1.25


class TestBatchSchedule:
    def test_matches_scalar_everywhere(self, known_cell, hw_space, rng):
        """The central consistency property: enumeration == evaluation."""
        model = LatencyModel()
        ir = compile_network(known_cell, CIFAR10_SKELETON)
        indices = [int(i) for i in rng.integers(0, hw_space.size, 12)]
        configs = [hw_space.config_at(i) for i in indices]
        batch = batch_schedule(ir, configs, model)
        for k, config in enumerate(configs):
            scalar = schedule_network(ir, config, model).latency_s
            assert batch[k] == pytest.approx(scalar, rel=1e-12), config.short_name()

    def test_accepts_space_directly(self, hw_space):
        ir = compile_network(resnet_cell(), CIFAR10_SKELETON)
        latencies = batch_schedule(ir, hw_space)
        assert latencies.shape == (hw_space.size,)
        assert np.all(latencies > 0)

    def test_single_config(self, default_config):
        ir = compile_network(resnet_cell(), CIFAR10_SKELETON)
        batch = batch_schedule(ir, default_config)
        assert batch.shape == (1,)


class TestBatchScheduleProperty:
    """Property-style: random cells x random configs, batched == scalar."""

    def test_random_cells_random_configs(self, hw_space):
        from repro.nasbench.database import enumerate_unique_cells

        model = LatencyModel()
        rng = np.random.default_rng(29)
        cells = enumerate_unique_cells(4)
        picks = rng.choice(len(cells), size=6, replace=False)
        for pick in picks:
            ir = compile_network(cells[int(pick)], CIFAR10_SKELETON)
            indices = [int(i) for i in rng.integers(0, hw_space.size, 10)]
            configs = [hw_space.config_at(i) for i in indices]
            batch = batch_schedule(ir, configs, model)
            for k, config in enumerate(configs):
                scalar = schedule_network(ir, config, model).latency_s
                assert batch[k] == pytest.approx(scalar, rel=1e-12), (
                    f"cell {pick} on {config.short_name()}"
                )
