"""Tests for the analytical latency model."""

import numpy as np
import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.latency import LatencyModel, config_columns
from repro.nasbench.compile import compile_network
from repro.nasbench.known_cells import googlenet_cell, resnet_cell
from repro.nasbench.skeleton import CIFAR10_SKELETON
from repro.nasbench import ops as O


@pytest.fixture(scope="module")
def model():
    return LatencyModel()


@pytest.fixture(scope="module")
def ops():
    by_kind = {}
    for cell in (googlenet_cell(), resnet_cell()):
        ir = compile_network(cell, CIFAR10_SKELETON)
        for op in ir.ops:
            by_kind.setdefault(op.kind, op)
    return by_kind


class TestConvDurations:
    def test_positive(self, model, ops):
        for kind in (O.KIND_STEM, O.KIND_CONV3X3, O.KIND_CONV1X1, O.KIND_PROJ1X1):
            assert model.op_duration(ops[kind], AcceleratorConfig()) > 0

    def test_bigger_engine_is_faster(self, model, ops):
        small = AcceleratorConfig(filter_par=8, pixel_par=4)
        big = AcceleratorConfig(filter_par=16, pixel_par=64)
        op = ops[O.KIND_CONV3X3]
        assert model.op_duration(op, big) < model.op_duration(op, small)

    def test_1x1_op_uses_1x1_engine_when_dual(self, model, ops):
        op = ops[O.KIND_CONV1X1]
        # With ratio=0.25 the 1x1 engine owns only a quarter of the
        # DSPs, so the op slows vs the single general engine.
        single = AcceleratorConfig(ratio_conv_engines=1.0, pixel_par=64)
        dual = AcceleratorConfig(ratio_conv_engines=0.25, pixel_par=64)
        assert model.op_duration(op, dual) > model.op_duration(op, single)

    def test_3x3_op_keeps_most_throughput_when_dual(self, model, ops):
        op = ops[O.KIND_CONV3X3]
        single = AcceleratorConfig(ratio_conv_engines=1.0, pixel_par=64)
        dual = AcceleratorConfig(ratio_conv_engines=0.25, pixel_par=64)
        slowdown = model.op_duration(op, dual) / model.op_duration(op, single)
        assert 1.0 <= slowdown < 1.6

    def test_overhead_floor(self, model, ops):
        duration = model.op_duration(ops[O.KIND_CONV1X1], AcceleratorConfig(pixel_par=64))
        assert duration >= model.params.accel_op_overhead_s


class TestMemoryEffects:
    def test_wider_memory_never_slower(self, model, ops):
        for kind, op in ops.items():
            narrow = AcceleratorConfig(mem_interface_width=256)
            wide = AcceleratorConfig(mem_interface_width=512)
            assert model.op_duration(op, wide) <= model.op_duration(op, narrow) + 1e-12

    def test_small_weight_buffer_can_slow_memory_bound_op(self, model):
        ir = compile_network(resnet_cell(), CIFAR10_SKELETON)
        # Pick the largest-weight conv (512ch at 8x8: 2.4MB of weights).
        op = max(ir.ops, key=lambda o: o.weight_bytes)
        small = AcceleratorConfig(
            weight_buffer_depth=1024, filter_par=8, pixel_par=4, mem_interface_width=256
        )
        big = AcceleratorConfig(
            weight_buffer_depth=4096, filter_par=8, pixel_par=4, mem_interface_width=256
        )
        assert model.op_duration(op, small) >= model.op_duration(op, big)

    def test_bandwidth_formula(self, model):
        cols = config_columns(AcceleratorConfig(mem_interface_width=256))
        bw = model.memory_bandwidth_bytes_per_s(cols)[0]
        expected = 32 * model.params.axi_clock_hz * model.params.mem_efficiency
        assert bw == pytest.approx(expected)


class TestPoolAndCpu:
    def test_pool_engine_faster_than_cpu(self, model, ops):
        op = ops[O.KIND_MAXPOOL3X3]
        on = AcceleratorConfig(pool_enable=True, pixel_par=64)
        off = AcceleratorConfig(pool_enable=False, pixel_par=64)
        assert model.op_duration(op, on) < model.op_duration(op, off)

    def test_cpu_ops_config_independent(self, model, ops):
        op = ops[O.KIND_ADD]
        a = model.op_duration(op, AcceleratorConfig(pixel_par=4))
        b = model.op_duration(op, AcceleratorConfig(pixel_par=64, mem_interface_width=512))
        assert a == b

    def test_dense_runs_on_cpu(self, model, ops):
        op = ops[O.KIND_DENSE]
        duration = model.op_duration(op, AcceleratorConfig())
        expected = op.macs / model.params.cpu_macs_per_s + model.params.cpu_op_overhead_s
        assert duration == pytest.approx(expected)


class TestVectorization:
    def test_vector_matches_scalar(self, model, ops, hw_space, rng):
        indices = [int(i) for i in rng.integers(0, hw_space.size, 8)]
        configs = [hw_space.config_at(i) for i in indices]
        cols = config_columns(configs)
        for op in ops.values():
            vector = model.durations(op, cols)
            for k, config in enumerate(configs):
                assert vector[k] == pytest.approx(model.op_duration(op, config), rel=1e-12)

    def test_config_columns_from_single(self):
        cols = config_columns(AcceleratorConfig())
        assert all(len(v) == 1 for v in cols.values())


def random_op(rng) -> "O.CompiledOp":
    """A random-shaped op of a random kind (property-test generator)."""
    from repro.nasbench.compile import CompiledOp

    kind = rng.choice(
        [O.KIND_STEM, O.KIND_CONV3X3, O.KIND_CONV1X1, O.KIND_PROJ1X1,
         O.KIND_MAXPOOL3X3, O.KIND_DOWNSAMPLE, O.KIND_ADD, O.KIND_CONCAT,
         O.KIND_GAP, O.KIND_DENSE]
    )
    size = int(rng.choice([4, 8, 16, 32]))
    return CompiledOp(
        index=0,
        kind=str(kind),
        name="random",
        in_channels=int(rng.integers(1, 256)),
        out_channels=int(rng.integers(1, 256)),
        height=size,
        width=size,
        deps=(),
        stride=int(rng.choice([1, 2])),
    )


class TestVectorizationProperty:
    """Property-style: random op shapes x random configs, batched == scalar."""

    def test_random_ops_random_configs_elementwise(self):
        from repro.accelerator.space import AcceleratorSpace

        model = LatencyModel()
        space = AcceleratorSpace()
        rng = np.random.default_rng(17)
        for _ in range(40):
            op = random_op(rng)
            configs = [
                space.config_at(int(i)) for i in rng.integers(0, space.size, 16)
            ]
            vector = model.durations(op, config_columns(configs))
            assert vector.shape == (16,)
            assert np.all(vector > 0)
            for k, config in enumerate(configs):
                scalar = model.op_duration(op, config)
                assert vector[k] == pytest.approx(scalar, rel=1e-12), (
                    f"{op.kind} {op.in_channels}x{op.out_channels}"
                    f"@{op.height}x{op.width}/s{op.stride} on {config.short_name()}"
                )

    def test_all_configs_at_once_matches_subsets(self):
        """Evaluating the whole space in one call == per-config calls."""
        from repro.accelerator.space import AcceleratorSpace

        model = LatencyModel()
        space = AcceleratorSpace()
        rng = np.random.default_rng(23)
        op = random_op(rng)
        full = model.durations(op, config_columns(space.columns()))
        assert full.shape == (space.size,)
        for i in rng.integers(0, space.size, 25):
            assert full[int(i)] == pytest.approx(
                model.op_duration(op, space.config_at(int(i))), rel=1e-12
            )
