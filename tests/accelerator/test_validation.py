"""Tests for the model-validation harness (Section II-C checks)."""

import pytest

from repro.accelerator.validation import (
    SyntheticOracle,
    ValidationReport,
    validate_area_model,
    validate_latency_model,
)
from repro.accelerator.area import AreaModel
from repro.accelerator.config import AcceleratorConfig
from repro.nasbench.compile import compile_network
from repro.nasbench.known_cells import googlenet_cell
from repro.nasbench.skeleton import CIFAR10_SKELETON


class TestOracle:
    def test_deterministic(self):
        oracle = SyntheticOracle(seed=1)
        model = AreaModel()
        config = AcceleratorConfig()
        assert oracle.compiled_area_mm2(config, model) == oracle.compiled_area_mm2(config, model)

    def test_noise_differs_by_config(self):
        oracle = SyntheticOracle(seed=1)
        model = AreaModel()
        a = AcceleratorConfig(pixel_par=4)
        b = AcceleratorConfig(pixel_par=8)
        ratio_a = oracle.compiled_area_mm2(a, model) / model.area_mm2(a)
        ratio_b = oracle.compiled_area_mm2(b, model) / model.area_mm2(b)
        assert ratio_a != ratio_b


class TestReport:
    def test_error_math(self):
        report = ValidationReport(predicted=[1.0, 2.0], measured=[1.1, 1.9])
        assert report.mean_error == pytest.approx((0.1 / 1.1 + 0.1 / 1.9) / 2)
        assert report.accuracy == pytest.approx(1.0 - report.mean_error)


class TestExperiments:
    def test_area_validation_near_paper(self):
        report = validate_area_model(n_configs=10, seed=7)
        assert len(report.predicted) == 10
        assert report.mean_error < 0.06  # paper: 1.6%

    def test_latency_validation_near_paper(self):
        ir = compile_network(googlenet_cell(), CIFAR10_SKELETON)
        report = validate_latency_model(ir, n_configs=10, seed=7)
        assert 0.7 < report.accuracy <= 1.0  # paper: 85%

    def test_seed_changes_sampled_configs(self):
        a = validate_area_model(n_configs=5, seed=1)
        b = validate_area_model(n_configs=5, seed=2)
        assert a.predicted != b.predicted
