"""Tests for the component area model."""

import dataclasses

import numpy as np
import pytest

from repro.accelerator.area import AreaModel, AreaModelParams
from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.resources import ZYNQ_ULTRASCALE_PLUS
from repro.accelerator.space import AcceleratorSpace
from tests.conftest import sample_configs


@pytest.fixture(scope="module")
def model():
    return AreaModel()


class TestMonotonicity:
    def test_more_pixel_par_more_area(self, model):
        small = AcceleratorConfig(pixel_par=4)
        big = AcceleratorConfig(pixel_par=64)
        assert model.area_mm2(big) > model.area_mm2(small)

    def test_more_filter_par_more_area(self, model):
        assert model.area_mm2(AcceleratorConfig(filter_par=16)) > model.area_mm2(
            AcceleratorConfig(filter_par=8)
        )

    def test_pool_engine_costs_area(self, model):
        with_pool = AcceleratorConfig(pool_enable=True)
        without = AcceleratorConfig(pool_enable=False)
        assert model.area_mm2(with_pool) > model.area_mm2(without)

    def test_bigger_buffers_cost_area(self, model):
        big = AcceleratorConfig(input_buffer_depth=8192)
        small = AcceleratorConfig(input_buffer_depth=1024)
        assert model.area_mm2(big) > model.area_mm2(small)

    def test_wider_memory_costs_area(self, model):
        assert model.area_mm2(
            AcceleratorConfig(mem_interface_width=512)
        ) > model.area_mm2(AcceleratorConfig(mem_interface_width=256))


class TestRange:
    def test_space_range_matches_paper_scale(self, model):
        """Fig. 4's colour scale spans roughly 60-200 mm2."""
        areas = [model.area_mm2(c) for c in sample_configs(300, seed=1)]
        assert 50 < min(areas) < 70
        assert 150 < max(areas) < 215

    def test_every_config_fits_the_device(self, model):
        for config in sample_configs(200, seed=2):
            assert ZYNQ_ULTRASCALE_PLUS.fits(model.resources(config)), config.short_name()

    def test_dsp_usage_matches_split(self, model):
        config = AcceleratorConfig(filter_par=16, pixel_par=64, ratio_conv_engines=0.5)
        resources = model.conv_engines(config)
        assert resources.dsp == config.total_conv_dsp


class TestBreakdown:
    def test_components_sum_to_total(self, model):
        config = AcceleratorConfig(pool_enable=True)
        breakdown = model.breakdown(config)
        assert sum(breakdown.values()) == pytest.approx(model.area_mm2(config))

    def test_engines_dominate_large_configs(self, model):
        config = AcceleratorConfig(filter_par=16, pixel_par=64)
        breakdown = model.breakdown(config)
        assert breakdown["conv_engines"] == max(breakdown.values())

    def test_pooling_zero_when_disabled(self, model):
        assert model.breakdown(AcceleratorConfig(pool_enable=False))["pooling_engine"] == 0.0

    def test_dual_engine_area_close_to_single(self, model):
        """Splitting the DSP budget redistributes area, not doubles it:
        the second engine adds control overhead but 1x1 lanes drop the
        3x3 sliding-window logic, so totals stay within a few percent.
        """
        dual = AcceleratorConfig(ratio_conv_engines=0.5)
        single = AcceleratorConfig(ratio_conv_engines=1.0)
        ratio = model.area_mm2(dual) / model.area_mm2(single)
        assert 0.95 < ratio < 1.1
        assert model.conv_engines(dual).dsp == model.conv_engines(single).dsp


class TestBatchArea:
    """Property-style: the all-configs batched path equals the scalar path."""

    def test_full_space_elementwise_equal(self, model):
        space = AcceleratorSpace()
        batch = model.batch_area_mm2(space.columns())
        assert batch.shape == (space.size,)
        for i in range(0, space.size, 251):  # deterministic stride sample
            assert batch[i] == model.area_mm2(space.config_at(i))

    def test_random_configs_elementwise_equal(self, model):
        """Random config batches, exact equality against the scalar model."""
        from repro.accelerator.latency import config_columns

        space = AcceleratorSpace()
        rng = np.random.default_rng(3)
        for _ in range(10):
            configs = [
                space.config_at(int(i))
                for i in rng.integers(0, space.size, 32)
            ]
            batch = model.batch_area_mm2(config_columns(configs))
            for k, config in enumerate(configs):
                assert batch[k] == model.area_mm2(config), config.short_name()

    def test_random_params_still_agree(self):
        """The equality is structural, not a coincidence of defaults."""
        rng = np.random.default_rng(9)
        space = AcceleratorSpace()
        for trial in range(5):
            defaults = AreaModelParams()
            scaled = {
                f.name: getattr(defaults, f.name) * float(rng.uniform(0.5, 2.0))
                for f in dataclasses.fields(AreaModelParams)
            }
            model = AreaModel(AreaModelParams(**scaled))
            indices = rng.integers(0, space.size, 24)
            configs = [space.config_at(int(i)) for i in indices]
            from repro.accelerator.latency import config_columns

            batch = model.batch_area_mm2(config_columns(configs))
            for k, config in enumerate(configs):
                assert batch[k] == pytest.approx(model.area_mm2(config), rel=1e-12)
