"""Tests for the latency lookup table."""

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.lut import LatencyLUT, config_key, signature_key
from repro.accelerator.scheduler import schedule_network
from repro.nasbench.compile import compile_network
from repro.nasbench.known_cells import googlenet_cell, resnet_cell
from repro.nasbench.skeleton import CIFAR10_SKELETON


@pytest.fixture
def ir():
    return compile_network(googlenet_cell(), CIFAR10_SKELETON)


class TestLUT:
    def test_get_matches_model(self, ir, default_config):
        lut = LatencyLUT()
        op = ir.ops[0]
        assert lut.get(op, default_config) == lut.model.op_duration(op, default_config)

    def test_memoizes(self, ir, default_config):
        lut = LatencyLUT()
        lut.get(ir.ops[0], default_config)
        entries = lut.num_entries
        lut.get(ir.ops[0], default_config)
        assert lut.num_entries == entries

    def test_network_durations_align(self, ir, default_config):
        lut = LatencyLUT()
        durations = lut.network_durations(ir, default_config)
        assert len(durations) == len(ir.ops)
        direct = schedule_network(ir, default_config)
        via_lut = schedule_network(ir, default_config, durations=durations)
        assert via_lut.latency_s == pytest.approx(direct.latency_s)

    def test_build_covers_unique_signatures(self, ir, default_config):
        lut = LatencyLUT().build([ir], [default_config])
        assert lut.num_entries == len(ir.unique_signatures())
        assert len(lut.unique_op_signatures()) == len(ir.unique_signatures())

    def test_signature_sharing_across_cells(self, default_config):
        """Stem/downsample/classifier signatures repeat across cells."""
        lut = LatencyLUT()
        ir_a = compile_network(resnet_cell(), CIFAR10_SKELETON)
        ir_b = compile_network(googlenet_cell(), CIFAR10_SKELETON)
        lut.build([ir_a], [default_config])
        before = lut.num_entries
        lut.build([ir_b], [default_config])
        added = lut.num_entries - before
        assert added < len(ir_b.unique_signatures())

    def test_save_load_round_trip(self, ir, default_config, tmp_path):
        lut = LatencyLUT().build([ir], [default_config])
        path = lut.save(tmp_path / "lut.json")
        loaded = LatencyLUT.load(path)
        assert loaded.num_entries == lut.num_entries
        op = ir.ops[3]
        assert loaded.get(op, default_config) == pytest.approx(lut.get(op, default_config))

    def test_keys_hashable(self, ir, default_config):
        assert isinstance(hash(signature_key(ir.ops[0])), int)
        assert isinstance(hash(config_key(default_config)), int)
