"""Tests for AcceleratorConfig."""

import pytest

from repro.accelerator.config import PARAMETER_VALUES, AcceleratorConfig


class TestValidation:
    def test_default_is_valid(self):
        AcceleratorConfig()

    @pytest.mark.parametrize("name", sorted(PARAMETER_VALUES))
    def test_rejects_out_of_domain(self, name):
        kwargs = {name: -1}
        with pytest.raises(ValueError):
            AcceleratorConfig(**kwargs)

    def test_domain_sizes_multiply_to_8640(self):
        total = 1
        for values in PARAMETER_VALUES.values():
            total *= len(values)
        assert total == 8640


class TestDspSplit:
    def test_general_engine_takes_all(self):
        config = AcceleratorConfig(ratio_conv_engines=1.0, filter_par=16, pixel_par=32)
        dsp_3x3, dsp_1x1 = config.dsp_split()
        assert dsp_3x3 == 16 * 32
        assert dsp_1x1 == 0
        assert not config.has_dual_engines

    def test_split_sums_to_total(self):
        for ratio in PARAMETER_VALUES["ratio_conv_engines"]:
            config = AcceleratorConfig(ratio_conv_engines=ratio, filter_par=16, pixel_par=64)
            dsp_3x3, dsp_1x1 = config.dsp_split()
            assert dsp_3x3 + dsp_1x1 == config.total_conv_dsp

    def test_ratio_is_1x1_share(self):
        config = AcceleratorConfig(ratio_conv_engines=0.25, filter_par=16, pixel_par=64)
        dsp_3x3, dsp_1x1 = config.dsp_split()
        assert dsp_1x1 / config.total_conv_dsp == pytest.approx(0.25, abs=0.05)
        assert dsp_3x3 > dsp_1x1

    def test_neither_engine_degenerates(self):
        for ratio in (0.75, 0.67, 0.5, 0.33, 0.25):
            for pixel_par in PARAMETER_VALUES["pixel_par"]:
                config = AcceleratorConfig(
                    ratio_conv_engines=ratio, filter_par=8, pixel_par=pixel_par
                )
                dsp_3x3, dsp_1x1 = config.dsp_split()
                assert dsp_3x3 >= config.filter_par
                assert dsp_1x1 >= config.filter_par

    def test_split_quantized_to_lanes(self):
        config = AcceleratorConfig(ratio_conv_engines=0.33, filter_par=16, pixel_par=32)
        dsp_3x3, dsp_1x1 = config.dsp_split()
        assert dsp_3x3 % 16 == 0
        assert dsp_1x1 % 16 == 0


class TestMisc:
    def test_buffer_bytes(self):
        config = AcceleratorConfig(
            input_buffer_depth=2048, weight_buffer_depth=1024,
            output_buffer_depth=4096, filter_par=8, pixel_par=16,
        )
        capacity = config.buffer_bytes()
        assert capacity["input"] == 2048 * 16
        assert capacity["weight"] == 1024 * 8
        assert capacity["output"] == 4096 * 16

    def test_dict_round_trip(self):
        config = AcceleratorConfig(pixel_par=8, pool_enable=True)
        assert AcceleratorConfig.from_dict(config.to_dict()) == config

    def test_short_name_distinct(self):
        a = AcceleratorConfig(pixel_par=8)
        b = AcceleratorConfig(pixel_par=16)
        assert a.short_name() != b.short_name()
