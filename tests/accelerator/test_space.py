"""Tests for the 8640-point accelerator space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.space import AcceleratorSpace


class TestSize:
    def test_size_is_8640(self, hw_space):
        assert hw_space.size == 8640

    def test_vocab_sizes(self, hw_space):
        assert hw_space.vocab_sizes == [2, 5, 6, 4, 3, 3, 2, 2]
        assert hw_space.num_tokens == 8


class TestIndexing:
    def test_out_of_range_raises(self, hw_space):
        with pytest.raises(IndexError):
            hw_space.config_at(8640)
        with pytest.raises(IndexError):
            hw_space.config_at(-1)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 8639))
    def test_bijection(self, index):
        space = AcceleratorSpace()
        assert space.index_of(space.config_at(index)) == index

    def test_first_and_last(self, hw_space):
        first = hw_space.config_at(0)
        assert first.filter_par == 8
        last = hw_space.config_at(hw_space.size - 1)
        assert last.pool_enable is True


class TestDecode:
    def test_decode_encode_round_trip(self, hw_space, rng):
        for _ in range(10):
            actions = [int(rng.integers(0, v)) for v in hw_space.vocab_sizes]
            config = hw_space.decode(actions)
            assert hw_space.encode(config) == actions

    def test_wrong_length(self, hw_space):
        with pytest.raises(ValueError):
            hw_space.decode([0, 0])

    def test_out_of_vocab(self, hw_space):
        actions = [0] * hw_space.num_tokens
        actions[0] = 5
        with pytest.raises(ValueError):
            hw_space.decode(actions)


class TestColumns:
    def test_columns_align_with_config_at(self, hw_space, rng):
        cols = hw_space.columns()
        for i in map(int, rng.integers(0, hw_space.size, 25)):
            config = hw_space.config_at(i)
            for name, values in cols.items():
                assert values[i] == getattr(config, name), (i, name)

    def test_column_lengths(self, hw_space):
        cols = hw_space.columns()
        assert all(len(v) == hw_space.size for v in cols.values())

    def test_random_config_valid(self, hw_space, rng):
        config = hw_space.random_config(rng)
        assert 0 <= hw_space.index_of(config) < hw_space.size

    def test_iteration_matches_indexing(self, hw_space):
        import itertools

        for i, config in enumerate(itertools.islice(iter(hw_space), 20)):
            assert config == hw_space.config_at(i)
