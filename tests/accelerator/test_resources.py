"""Tests for the Table I resource/area accounting."""

import pytest

from repro.accelerator.resources import (
    RELATIVE_AREA,
    TILE_AREA_MM2,
    ZYNQ_ULTRASCALE_PLUS,
    ResourceVector,
)


class TestTable1Constants:
    def test_relative_areas(self):
        assert RELATIVE_AREA == {"clb": 1.0, "bram36": 6.0, "dsp": 10.0}

    def test_tile_areas(self):
        assert TILE_AREA_MM2 == {"clb": 0.0044, "bram36": 0.026, "dsp": 0.044}

    def test_device_totals_match_paper(self):
        # Paper: 64,922 CLB-equivalents and 286 mm2.
        assert ZYNQ_ULTRASCALE_PLUS.total_relative_area() == pytest.approx(64_922, rel=0.002)
        assert ZYNQ_ULTRASCALE_PLUS.total_silicon_area_mm2() == pytest.approx(286, rel=0.005)


class TestResourceVector:
    def test_add(self):
        v = ResourceVector(1, 2, 3) + ResourceVector(10, 20, 30)
        assert (v.clb, v.bram36, v.dsp) == (11, 22, 33)

    def test_scale(self):
        v = ResourceVector(2, 4, 6).scale(0.5)
        assert (v.clb, v.bram36, v.dsp) == (1, 2, 3)

    def test_relative_area(self):
        assert ResourceVector(1, 1, 1).relative_area() == 17.0

    def test_silicon_area(self):
        v = ResourceVector(clb=1000)
        assert v.silicon_area_mm2() == pytest.approx(4.4)

    def test_to_dict(self):
        assert ResourceVector(1, 2, 3).to_dict() == {"clb": 1, "bram36": 2, "dsp": 3}


class TestDevice:
    def test_fits(self):
        assert ZYNQ_ULTRASCALE_PLUS.fits(ResourceVector(1000, 100, 100))
        assert not ZYNQ_ULTRASCALE_PLUS.fits(ResourceVector(dsp=99_999))

    def test_utilization(self):
        util = ZYNQ_ULTRASCALE_PLUS.utilization(ResourceVector(dsp=1260))
        assert util["dsp"] == pytest.approx(0.5)
        assert util["clb"] == 0.0
