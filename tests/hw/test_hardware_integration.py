"""Platform threading through evaluator, study specs, and the CLI."""

import json

import numpy as np
import pytest

from repro.core.evaluator import (
    CodesignEvaluator,
    build_evaluator,
    hardware_namespace,
)
from repro.core.scenarios import unconstrained
from repro.core.study import HardwareSpec, StudyError, StudySpec, build_study, run_study
from repro.experiments.common import Scale
from repro.hw import build_platform, default_platform
from repro.nasbench.database import sample_unique_cells

TINY = Scale(name="tiny", search_steps=8, num_repeats=1, fig7_target_scale=0.05)


def sweep_spec(**execution) -> StudySpec:
    execution = {"num_steps": 6, "num_repeats": 1, **execution}
    return StudySpec(
        name="sweep",
        strategies=({"name": "random"},),
        scenarios=("unconstrained",),
        evaluator={"source": "surrogate"},
        hardware=(
            {"name": "dac2020"},
            {"name": "embedded-lite"},
            {"name": "dac2020-scaled", "params": {"clock_mhz": 300.0},
             "label": "fast"},
        ),
        execution=execution,
    )


class TestEvaluatorPlatform:
    def test_default_platform_results_unchanged(self, default_config):
        """Platform-built evaluator == legacy default construction."""
        cell = sample_unique_cells(1, seed=3)[0]
        legacy = CodesignEvaluator.from_surrogate(unconstrained())
        ours = CodesignEvaluator.from_surrogate(
            unconstrained(), platform=default_platform()
        )
        a = legacy.evaluate(cell, default_config)
        b = ours.evaluate(cell, default_config)
        assert a.metrics.latency_s == b.metrics.latency_s
        assert a.metrics.area_mm2 == b.metrics.area_mm2
        assert a.reward.value == b.reward.value

    def test_platform_changes_metrics(self, default_config):
        cell = sample_unique_cells(1, seed=3)[0]
        reference = CodesignEvaluator.from_surrogate(unconstrained())
        scaled = CodesignEvaluator.from_surrogate(
            unconstrained(),
            platform=build_platform(
                "dac2020-scaled", {"clock_mhz": 75.0, "area_scale": 2.0}
            ),
        )
        slow = scaled.evaluate(cell, default_config).metrics
        base = reference.evaluate(cell, default_config).metrics
        assert slow.latency_s >= base.latency_s
        assert slow.area_mm2 == pytest.approx(2.0 * base.area_mm2)

    def test_platform_and_legacy_models_conflict(self):
        from repro.accelerator.area import AreaModel

        with pytest.raises(ValueError, match="not both"):
            CodesignEvaluator.from_surrogate(
                unconstrained(),
                area_model=AreaModel(),
                platform=default_platform(),
            )

    def test_build_evaluator_threads_platform(self):
        platform = build_platform("embedded-lite")
        evaluator = build_evaluator(
            "surrogate", unconstrained(), platform=platform
        )
        assert evaluator.platform is platform
        assert evaluator.with_reward(unconstrained()).platform is platform

    def test_database_source_skips_table_on_other_platform(self, micro4_bundle):
        scenario = unconstrained(micro4_bundle.bounds)
        reference = build_evaluator("database", scenario, bundle=micro4_bundle)
        assert reference._latency_table is not None
        other = build_evaluator(
            "database", scenario, bundle=micro4_bundle,
            platform=build_platform("dac2020-scaled", {"clock_mhz": 75.0}),
        )
        assert other._latency_table is None
        # ... and still evaluates, through its own models.
        spec = micro4_bundle.database.records[0].spec
        config = micro4_bundle.space.config_at(0)
        assert other.latency_s(spec, config) > reference.latency_s(spec, config)

    def test_bundle_table_attaches_for_equivalent_platform(self):
        """Namespace equality, not object identity, gates the table."""
        from repro.experiments.common import load_bundle

        bundle = load_bundle(max_vertices=4, platform=build_platform("embedded-lite"))
        scenario = unconstrained(bundle.bounds)
        # A *fresh* equivalent instance (what build_study constructs
        # from the spec) must still get the precomputed table.
        evaluator = build_evaluator(
            "database", scenario, bundle=bundle,
            platform=build_platform("embedded-lite"),
        )
        assert evaluator._latency_table is not None
        spec = StudySpec(
            name="embedded-db",
            strategies=({"name": "random"},),
            scenarios=("unconstrained",),
            evaluator={"source": "database"},
            hardware="embedded-lite",
            execution={"num_steps": 5, "num_repeats": 1},
        )
        study = build_study(spec, bundle=bundle, scale=TINY)
        # ... and the Pareto overlay applies, since the bundle's
        # arrays were enumerated by this very platform.
        assert list(study.pareto_top100) == ["unconstrained"]

    def test_attach_table_refuses_space_mismatch(self, micro4_bundle):
        evaluator = CodesignEvaluator.from_surrogate(
            unconstrained(), platform=build_platform("embedded-lite")
        )
        with pytest.raises(ValueError, match="config space does not match"):
            evaluator.attach_latency_table(
                micro4_bundle.latency_ms,
                micro4_bundle.row_of_hash(),
                micro4_bundle.space,
            )

    def test_attach_table_refuses_wrong_width(self, micro4_bundle):
        evaluator = CodesignEvaluator.from_surrogate(unconstrained())
        with pytest.raises(ValueError, match="columns"):
            evaluator.attach_latency_table(
                micro4_bundle.latency_ms[:, :10],
                micro4_bundle.row_of_hash(),
                micro4_bundle.space,
            )

    def test_hardware_namespace_composition(self):
        assert hardware_namespace("study/x", None) == "study/x"
        assert hardware_namespace("study/x", default_platform()) == "study/x"
        embedded = build_platform("embedded-lite")
        assert (
            hardware_namespace("study/x", embedded)
            == "study/x@hw/embedded-lite"
        )


class TestLRUBoundedCaches:
    def test_caches_respect_capacity(self):
        from tests.conftest import sample_configs

        cell = sample_unique_cells(1, seed=5)[0]
        evaluator = CodesignEvaluator.from_surrogate(
            unconstrained(), cache_capacity=4
        )
        configs = sample_configs(10, seed=6)
        first = [evaluator.evaluate(cell, c).metrics for c in configs]
        assert len(evaluator._area_cache) <= 4
        assert len(evaluator._latency_cache) <= 4
        # Eviction never changes results — recomputation is pure.
        again = [evaluator.evaluate(cell, c).metrics for c in configs]
        for a, b in zip(first, again):
            assert a.latency_s == b.latency_s
            assert a.area_mm2 == b.area_mm2

    def test_default_capacity_bounds_the_memos(self):
        from repro.core.evaluator import DEFAULT_CACHE_CAPACITY

        evaluator = CodesignEvaluator.from_surrogate(unconstrained())
        assert evaluator._area_cache.capacity == DEFAULT_CACHE_CAPACITY
        assert evaluator._latency_cache.capacity == DEFAULT_CACHE_CAPACITY


class TestStudyHardware:
    def test_spec_round_trips_hardware(self):
        spec = sweep_spec()
        assert StudySpec.from_dict(spec.to_dict()) == spec
        assert StudySpec.from_json(spec.to_json()) == spec
        json.dumps(spec.to_dict())

    def test_default_hardware_normalized_and_omitted_from_dict(self):
        spec = StudySpec(
            name="d", strategies=({"name": "random"},),
            scenarios=("unconstrained",), evaluator={"source": "surrogate"},
        )
        assert spec.hardware == (HardwareSpec(),)
        # The implicit reference platform must serialize to nothing:
        # ledgers pinned spec.to_dict() before this field existed, and
        # those runs must stay resumable.
        assert "hardware" not in spec.to_dict()
        assert StudySpec.from_dict(spec.to_dict()) == spec

    def test_non_default_hardware_serialized(self):
        spec = StudySpec(
            name="d", strategies=({"name": "random"},),
            scenarios=("unconstrained",), evaluator={"source": "surrogate"},
            hardware="embedded-lite",
        )
        assert spec.to_dict()["hardware"] == {
            "name": "embedded-lite", "params": {},
        }

    def test_pre_platform_ledger_still_resumes(self, tmp_path):
        """A ledger pinned by a spec dict without 'hardware' resumes."""
        import json
        import sqlite3

        ledger_path = tmp_path / "old.ledger"
        spec = StudySpec(
            name="old", strategies=({"name": "random"},),
            scenarios=("unconstrained",), evaluator={"source": "surrogate"},
            execution={"num_steps": 5, "num_repeats": 1,
                       "ledger": str(ledger_path)},
        )
        first = run_study(spec, scale=TINY)
        # Simulate a pre-platform ledger: the pinned spec has no
        # 'hardware' key (this is a no-op today — the assert proves it).
        with sqlite3.connect(ledger_path) as conn:
            row = conn.execute(
                "SELECT value FROM meta WHERE key='run_config'"
            ).fetchone()
            config = json.loads(row[0])
            assert "hardware" not in config["context"]["study_spec"]
        again = run_study(spec, scale=TINY)
        assert np.array_equal(
            first.outcomes["unconstrained"]["random"].results[0].reward_trace(),
            again.outcomes["unconstrained"]["random"].results[0].reward_trace(),
            equal_nan=True,
        )

    def test_hardware_accepts_bare_name(self):
        spec = StudySpec(
            name="d", strategies=({"name": "random"},),
            scenarios=("unconstrained",), evaluator={"source": "surrogate"},
            hardware="embedded-lite",
        )
        assert spec.hardware == (HardwareSpec(name="embedded-lite"),)

    def test_unknown_platform_rejected(self):
        with pytest.raises(StudyError, match="unknown hardware platform"):
            StudySpec(
                name="d", strategies=({"name": "random"},),
                scenarios=("unconstrained",),
                evaluator={"source": "surrogate"},
                hardware="tpu-v9",
            ).validate()

    def test_bad_platform_params_rejected(self):
        with pytest.raises(StudyError, match="clock_mhz"):
            StudySpec(
                name="d", strategies=({"name": "random"},),
                scenarios=("unconstrained",),
                evaluator={"source": "surrogate"},
                hardware={"name": "dac2020-scaled",
                          "params": {"clock_mhz": -1}},
            ).validate()

    def test_duplicate_hardware_labels_rejected(self):
        with pytest.raises(StudyError, match="duplicate hardware label"):
            StudySpec(
                name="d", strategies=({"name": "random"},),
                scenarios=("unconstrained",),
                evaluator={"source": "surrogate"},
                hardware=(
                    {"name": "dac2020-scaled", "params": {"clock_mhz": 100.0}},
                    {"name": "dac2020-scaled", "params": {"clock_mhz": 200.0}},
                ),
            )

    def test_hardware_name_override(self):
        spec = StudySpec(
            name="d", strategies=({"name": "random"},),
            scenarios=("unconstrained",), evaluator={"source": "surrogate"},
        ).with_overrides({"hardware.name": "embedded-lite"})
        assert spec.hardware[0].name == "embedded-lite"

    def test_build_study_per_platform_jobs_and_namespaces(self):
        study = build_study(sweep_spec(), scale=TINY)
        assert len(study.jobs) == 3  # 3 platforms x 1 scenario x 1 strategy
        assert set(study.job_meta) == {
            "dac2020:unconstrained/random",
            "embedded-lite:unconstrained/random",
            "fast:unconstrained/random",
        }
        assert set(study.platforms) == {"dac2020", "embedded-lite", "fast"}
        # Distinct cache namespaces per platform (reference adds none).
        assert len(set(study.namespaces.values())) == 3
        assert study.namespaces["dac2020"].startswith("study/surrogate")
        assert "@hw/" not in study.namespaces["dac2020"]
        assert "@hw/embedded-lite" in study.namespaces["embedded-lite"]

    def test_single_platform_keeps_legacy_labels_and_namespace(self):
        spec = StudySpec(
            name="single", strategies=({"name": "random"},),
            scenarios=("unconstrained",), evaluator={"source": "surrogate"},
            execution={"num_steps": 5, "num_repeats": 1},
        )
        study = build_study(spec, scale=TINY)
        assert list(study.job_meta) == ["unconstrained/random"]
        assert study.namespace.startswith("study/surrogate")

    def test_sweep_runs_end_to_end_with_per_platform_outcomes(self, tmp_path):
        ledger_path = tmp_path / "sweep.ledger"
        result = run_study(sweep_spec(ledger=str(ledger_path)), scale=TINY)
        assert set(result.outcomes) == {
            "dac2020:unconstrained",
            "embedded-lite:unconstrained",
            "fast:unconstrained",
        }
        rewards = {
            key: by_strategy["random"].mean_best_reward()
            for key, by_strategy in result.outcomes.items()
        }
        # Different hardware models, different outcomes.
        assert len({round(v, 12) for v in rewards.values()}) > 1
        from repro.parallel.ledger import RunLedger

        with RunLedger(ledger_path) as ledger:
            context = ledger.run_config()["context"]
        assert set(context["space"]) == {"dac2020", "embedded-lite", "fast"}
        assert len(set(context["space"].values())) == 3

    def test_sweep_rerun_resumes_from_ledger(self, tmp_path):
        ledger_path = tmp_path / "sweep.ledger"
        spec = sweep_spec(ledger=str(ledger_path))
        first = run_study(spec, scale=TINY)
        again = run_study(spec, scale=TINY)
        for key in first.outcomes:
            assert np.array_equal(
                first.outcomes[key]["random"].results[0].reward_trace(),
                again.outcomes[key]["random"].results[0].reward_trace(),
                equal_nan=True,
            )

    def test_database_sweep_searches_platform_space(self, micro4_bundle):
        spec = StudySpec(
            name="db-sweep",
            strategies=({"name": "random"},),
            scenarios=("unconstrained",),
            evaluator={"source": "database"},
            hardware=({"name": "dac2020"}, {"name": "embedded-lite"}),
            execution={"num_steps": 6, "num_repeats": 1},
        )
        study = build_study(spec, bundle=micro4_bundle, scale=TINY)
        # The Pareto overlay only applies to the platform that
        # enumerated the bundle.
        assert list(study.pareto_top100) == ["dac2020:unconstrained"]
        result = run_study(spec, bundle=micro4_bundle, scale=TINY)
        embedded_space = study.platforms["embedded-lite"].config_space()
        outcome = result.outcomes["embedded-lite:unconstrained"]["random"]
        for entry in outcome.results[0].archive.entries:
            assert entry.config.pixel_par <= 16
            assert embedded_space.index_of(entry.config) < embedded_space.size


class TestHardwareCli:
    def test_hw_list(self, capsys):
        from repro.cli import main

        assert main(["hw", "list"]) == 0
        out = capsys.readouterr().out.split()
        assert {"dac2020", "dac2020-scaled", "embedded-lite"} <= set(out)

    def test_hw_show(self, capsys):
        from repro.cli import main

        assert main(["hw", "show", "dac2020-scaled"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["name"] == "dac2020-scaled"
        assert shown["config_space_size"] == 8640
        assert "description" in shown

    def test_hw_show_unknown_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["hw", "show", "tpu-v9"])

    def test_hw_list_includes_surrogate_twins(self, capsys):
        from repro.cli import main

        assert main(["hw", "list"]) == 0
        out = capsys.readouterr().out.split()
        assert "surrogate:dac2020" in out
        assert "surrogate:embedded-lite" in out

    def test_hw_show_set_reports_effective_space(self, capsys):
        # The regression: show once printed the default-params space
        # for parametric platforms; with --set it must report the
        # budget-capped effective size.
        from repro.cli import main

        assert main(
            ["hw", "show", "dac2020-scaled", "--set", "max_pixel_par=16"]
        ) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["config_space_size"] == 5184
        assert max(shown["parameter_values"]["pixel_par"]) == 16

    def test_hw_show_surrogate_includes_budget_report(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["hw", "show", "surrogate:embedded-lite"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["name"] == "surrogate:embedded-lite"
        assert shown["cache_namespace"].startswith("hw/surrogate:embedded-lite/m")
        assert shown["error_budget"]["passed"] is True
        assert "latency" in shown["error_report"]

    def test_hw_validate_surrogate(self, capsys, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(
            ["hw", "validate-surrogate", "embedded-lite", "--samples", "64"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["budget"]["passed"] is True
        assert report["platform"] == "embedded-lite"

    def test_hw_validate_surrogate_budget_failure_exits_nonzero(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.cli import main
        from repro.hw import surrogate as surrogate_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        impossible = {
            metric: {
                "mean_rel_error": 0.0,
                "max_rel_error": 0.0,
                "min_rank_corr": 1.1,
            }
            for metric in ("area", "latency")
        }
        monkeypatch.setattr(surrogate_mod, "DEFAULT_ERROR_BUDGET", impossible)
        assert main(
            ["hw", "validate-surrogate", "embedded-lite", "--samples", "64"]
        ) == 1
        captured = capsys.readouterr()
        assert json.loads(captured.out)["budget"]["passed"] is False
        assert "budget" in captured.err

    def test_study_show_hardware_flag(self, capsys):
        from repro.cli import main

        assert main(["study", "show", "smoke", "--hardware", "embedded-lite"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["hardware"] == {"name": "embedded-lite", "params": {}}

    def test_study_run_on_non_default_platform(self, capsys):
        from repro.cli import main

        assert main(
            ["study", "run", "smoke", "--set", "execution.num_steps=4",
             "--hardware", "embedded-lite"]
        ) == 0
        assert "study smoke" in capsys.readouterr().out

    def test_hardware_flag_rejected_for_non_hw_experiment(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "table1", "--hardware", "embedded-lite"])

    def test_unknown_hardware_name_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "fig5", "--hardware", "bogus"])
