"""Tests for the hardware-platform API and registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    Dac2020Platform,
    HardwarePlatformError,
    build_platform,
    default_platform,
    get_platform,
    list_platforms,
    platform_from_spec,
    register_platform,
)
from repro.hw.platform import HardwarePlatform
from repro.nasbench.compile import compile_cell_ops
from repro.nasbench.known_cells import resnet_cell
from repro.nasbench.skeleton import CIFAR10_SKELETON


@pytest.fixture(scope="module")
def platforms():
    """Every registered platform, built from empty params."""
    return {name: build_platform(name) for name in list_platforms()}


@pytest.fixture(scope="module")
def resnet_ir():
    return compile_cell_ops(resnet_cell(), CIFAR10_SKELETON)


class TestRegistry:
    def test_builtin_platforms_registered(self):
        assert set(list_platforms()) >= {
            "dac2020", "dac2020-scaled", "embedded-lite",
        }

    def test_unknown_platform_names_registered(self):
        with pytest.raises(HardwarePlatformError, match="registered:"):
            build_platform("tpu-v9")

    def test_duplicate_registration_refused(self):
        with pytest.raises(HardwarePlatformError, match="already registered"):
            register_platform("dac2020", lambda params: None)

    def test_entry_carries_description(self):
        assert "CHaiDNN" in get_platform("dac2020").description

    def test_unknown_params_actionable(self):
        with pytest.raises(HardwarePlatformError, match="clock_ghz"):
            build_platform("dac2020-scaled", {"clock_ghz": 1.0})
        with pytest.raises(HardwarePlatformError, match="parameter"):
            build_platform("dac2020", {"anything": 1})
        with pytest.raises(HardwarePlatformError, match="parameter"):
            build_platform("embedded-lite", {"clock_mhz": 50})

    def test_bad_param_values_rejected(self):
        for params in (
            {"clock_mhz": 0},
            {"clock_mhz": -5},
            {"compute_efficiency": 1.5},
            {"mem_efficiency": 0},
            {"area_scale": "big"},
        ):
            with pytest.raises(HardwarePlatformError):
                build_platform("dac2020-scaled", params)

    def test_cap_leaving_no_values_rejected(self):
        with pytest.raises(HardwarePlatformError, match="no allowed values"):
            build_platform("dac2020-scaled", {"max_pixel_par": 2})


class TestRegistryDrift:
    """Every listed platform must construct and round-trip from params."""

    def test_all_listed_platforms_construct_from_params(self, platforms):
        for name, platform in platforms.items():
            assert isinstance(platform, HardwarePlatform), name
            assert platform.config_space().size > 0, name
            assert platform.cache_namespace().startswith("hw/"), name

    def test_to_dict_round_trips_through_registry(self, platforms):
        for name, platform in platforms.items():
            rebuilt = platform_from_spec(platform.to_dict())
            assert rebuilt.cache_namespace() == platform.cache_namespace(), name
            assert (
                rebuilt.config_space().parameters
                == platform.config_space().parameters
            ), name

    def test_parametrized_round_trip(self):
        platform = build_platform(
            "dac2020-scaled", {"clock_mhz": 300.0, "max_buffer_depth": 2048}
        )
        rebuilt = platform_from_spec(platform.to_dict())
        assert rebuilt.cache_namespace() == platform.cache_namespace()
        assert rebuilt.config_space().size == platform.config_space().size

    def test_describe_is_jsonable(self, platforms):
        import json

        for name, platform in platforms.items():
            blob = json.loads(json.dumps(platform.describe()))
            assert blob["name"] == name
            assert blob["config_space_size"] == platform.config_space().size

    def test_namespaces_distinct_across_platforms(self, platforms):
        non_reference = {
            name: p.cache_namespace()
            for name, p in platforms.items()
            if not p.is_reference
        }
        assert "embedded-lite" in non_reference
        namespaces = set(non_reference.values()) | {"hw/dac2020"}
        assert len(namespaces) == len(non_reference) + 1

    def test_namespace_pins_every_param(self):
        a = build_platform("dac2020-scaled", {"clock_mhz": 200.0})
        b = build_platform("dac2020-scaled", {"clock_mhz": 250.0})
        assert a.cache_namespace() != b.cache_namespace()


#: Batch==scalar probes per platform: the whole space when small, an
#: even deterministic stride otherwise (charm-u50's 393,216 configs
#: would make one full-space batch per hypothesis example unaffordable).
PROBE_LIMIT = 512


@pytest.fixture(scope="module")
def batch_probes(platforms, resnet_ir):
    out = {}
    for name, platform in platforms.items():
        space = platform.config_space()
        if space.size <= PROBE_LIMIT:
            indices = np.arange(space.size, dtype=np.int64)
        else:
            indices = np.unique(
                np.linspace(0, space.size - 1, PROBE_LIMIT).astype(np.int64)
            )
        cols = space.columns_at(indices)
        out[name] = (
            indices,
            platform.batch_area_mm2(cols),
            platform.batch_network_latency_s(resnet_ir, cols),
            platform.batch_config_valid(cols),
        )
    return out


class TestBatchScalarAgreement:
    """Per platform, the batched column query == the scalar loop, bit for bit."""

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_batch_area_matches_scalar(self, platforms, batch_probes, data):
        name = data.draw(st.sampled_from(sorted(platforms)))
        platform = platforms[name]
        space = platform.config_space()
        indices, batch, _, _ = batch_probes[name]
        pos = data.draw(st.integers(min_value=0, max_value=len(indices) - 1))
        assert batch[pos] == platform.area_mm2(space.config_at(int(indices[pos])))

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_batch_latency_matches_scalar(
        self, platforms, resnet_ir, batch_probes, data
    ):
        name = data.draw(st.sampled_from(sorted(platforms)))
        platform = platforms[name]
        space = platform.config_space()
        indices, _, batch, _ = batch_probes[name]
        pos = data.draw(st.integers(min_value=0, max_value=len(indices) - 1))
        assert batch[pos] == platform.network_latency_s(
            resnet_ir, space.config_at(int(indices[pos]))
        )

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_batch_validity_matches_scalar(self, platforms, batch_probes, data):
        name = data.draw(st.sampled_from(sorted(platforms)))
        platform = platforms[name]
        space = platform.config_space()
        indices, _, _, batch = batch_probes[name]
        pos = data.draw(st.integers(min_value=0, max_value=len(indices) - 1))
        assert bool(batch[pos]) == platform.config_valid(
            space.config_at(int(indices[pos]))
        )

    def test_columns_at_matches_full_columns(self, platforms):
        # The subsampled decode the probes (and sampled surrogate fits)
        # ride on must be value- and dtype-identical to slicing the
        # full enumeration wherever that enumeration is affordable.
        for name, platform in platforms.items():
            space = platform.config_space()
            if space.size > 20_000:
                continue
            full = space.columns()
            indices = np.unique(
                np.linspace(0, space.size - 1, 64).astype(np.int64)
            )
            sub = space.columns_at(indices)
            for key in full:
                assert np.array_equal(full[key][indices], sub[key]), (name, key)
                assert full[key].dtype == sub[key].dtype, (name, key)


class TestReferencePlatform:
    def test_default_platform_is_reference(self):
        assert default_platform().is_reference
        assert default_platform().cache_namespace() == "hw/dac2020"

    def test_scaled_with_default_params_is_reference(self):
        # Same models, same space — sharing cache rows is correct.
        assert build_platform("dac2020-scaled").is_reference

    def test_hand_built_variant_is_not_reference(self):
        from repro.accelerator.latency import LatencyModel, LatencyModelParams

        custom = Dac2020Platform(
            latency_model=LatencyModel(LatencyModelParams(clock_hz=99e6))
        )
        assert not custom.is_reference
        # The derived params pin the non-default constant.
        assert custom.cache_namespace() != "hw/dac2020"


class TestPlatformSemantics:
    def test_slower_clock_raises_latency(self, resnet_ir):
        fast = build_platform("dac2020-scaled", {"clock_mhz": 300.0})
        slow = build_platform("dac2020-scaled", {"clock_mhz": 75.0})
        cols = fast.config_space().columns()
        assert np.all(
            slow.batch_network_latency_s(resnet_ir, cols)
            >= fast.batch_network_latency_s(resnet_ir, cols)
        )

    def test_area_scale_scales_area(self):
        base = default_platform()
        shrunk = build_platform("dac2020-scaled", {"area_scale": 0.5})
        cols = base.config_space().columns()
        np.testing.assert_allclose(
            shrunk.batch_area_mm2(cols), 0.5 * base.batch_area_mm2(cols)
        )

    def test_budget_caps_shrink_config_space(self):
        capped = build_platform(
            "dac2020-scaled", {"max_pixel_par": 16, "max_buffer_depth": 2048}
        )
        space = capped.config_space()
        assert space.size < default_platform().config_space().size
        assert max(space.parameters["pixel_par"]) == 16
        assert max(space.parameters["input_buffer_depth"]) == 2048

    def test_embedded_profile_is_small_and_low_area(self):
        embedded = build_platform("embedded-lite")
        space = embedded.config_space()
        assert space.size < 1000
        # Every embedded configuration is cheaper than the default
        # platform's biggest engines.
        big = default_platform()
        assert np.max(embedded.batch_area_mm2(space.columns())) < np.max(
            big.batch_area_mm2(big.config_space().columns())
        )
