"""Tests for the learned hardware-cost surrogates (repro.hw.surrogate).

Mirrors the tensorized suite's cache-contract tests (round-trip, drift
refusal, corruption) for the JSON fit artifact, and pins the platform
contract the search stack depends on: batch == scalar bit for bit, a
cache namespace that can never collide with exact rows, and an error
budget the shipped platforms actually clear.
"""

import json

import numpy as np
import pytest

from repro.hw import (
    HardwarePlatformError,
    build_platform,
    list_platforms,
)
from repro.hw import surrogate as surrogate_mod
from repro.hw.surrogate import (
    SURROGATE_PREFIX,
    SurrogateModel,
    SurrogatePlatform,
    budget_verdict,
    fit_surrogate,
    surrogate_model_for,
    validate_surrogate,
)
from repro.nasbench.compile import compile_cell_ops
from repro.nasbench.known_cells import resnet_cell
from repro.nasbench.skeleton import CIFAR10_SKELETON


@pytest.fixture(scope="module")
def base():
    return build_platform("embedded-lite")


@pytest.fixture(scope="module")
def model(base):
    return surrogate_model_for(base, use_disk_cache=False)


@pytest.fixture(scope="module")
def platform(base, model):
    return SurrogatePlatform(base, model)


@pytest.fixture(scope="module")
def resnet_ir():
    return compile_cell_ops(resnet_cell(), CIFAR10_SKELETON)


class TestFit:
    def test_fit_is_deterministic(self, base):
        a = fit_surrogate(base, n_samples=64, seed=3)
        b = fit_surrogate(base, n_samples=64, seed=3)
        assert a.digest == b.digest

    def test_fit_inputs_key_the_model(self, base):
        a = fit_surrogate(base, n_samples=64, seed=3)
        b = fit_surrogate(base, n_samples=64, seed=4)
        assert a.digest != b.digest

    def test_surrogate_of_surrogate_refused(self, platform):
        with pytest.raises(HardwarePlatformError, match="surrogate of a surrogate"):
            fit_surrogate(platform)

    def test_tiny_sample_refused(self, base):
        with pytest.raises(HardwarePlatformError, match="at least 16"):
            fit_surrogate(base, n_samples=8)

    def test_holdout_report_clears_default_budget(self, model):
        # The fit-time holdout errors (a fifth of the configs plus an
        # entire held-out cell) are what `hw show surrogate:*` prints;
        # the shipped platform must clear the shipped budget.
        verdict = budget_verdict(model.report)
        assert verdict["passed"], verdict
        assert set(verdict["metrics"]) == {"area", "latency"}


class TestPlatformContract:
    def test_batch_equals_scalar_on_full_space(self, platform, resnet_ir):
        space = platform.config_space()
        cols = space.columns()
        batch_area = platform.batch_area_mm2(cols)
        batch_latency = platform.batch_network_latency_s(resnet_ir, cols)
        for i in range(space.size):
            config = space.config_at(i)
            assert batch_area[i] == platform.area_mm2(config)
            assert batch_latency[i] == platform.network_latency_s(resnet_ir, config)

    def test_space_and_validity_delegate_to_base(self, base, platform):
        space = platform.config_space()
        assert space.size == base.config_space().size
        cols = space.columns()
        assert np.array_equal(
            platform.batch_config_valid(cols), base.batch_config_valid(cols)
        )

    def test_operand_coercion_matches_full_columns(self, platform, resnet_ir):
        space = platform.config_space()
        full = platform.batch_network_latency_s(resnet_ir, space.columns())
        assert np.array_equal(
            platform.batch_network_latency_s(resnet_ir), full
        )
        configs = [space.config_at(i) for i in (0, 7, space.size - 1)]
        from_list = platform.batch_network_latency_s(resnet_ir, configs)
        assert np.array_equal(from_list, full[[0, 7, space.size - 1]])

    def test_namespace_pins_model_digest(self, base, platform):
        ns = platform.cache_namespace()
        assert ns.startswith("hw/surrogate:embedded-lite/m")
        assert ns != base.cache_namespace()
        other = SurrogatePlatform(base, fit_surrogate(base, n_samples=64, seed=3))
        # A differently fitted model must key different cache rows.
        assert other.cache_namespace() != ns

    def test_mismatched_base_refused(self, model):
        with pytest.raises(HardwarePlatformError, match="fitted for platform"):
            SurrogatePlatform(build_platform("dac2020"), model)

    def test_every_base_platform_has_a_registered_twin(self):
        names = set(list_platforms())
        for name in names:
            if name.startswith(SURROGATE_PREFIX):
                continue
            assert f"{SURROGATE_PREFIX}{name}" in names

    def test_registry_builds_surrogate_platform(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        built = build_platform("surrogate:embedded-lite")
        assert isinstance(built, SurrogatePlatform)
        description = built.describe()
        assert description["base_namespace"] == built.base.cache_namespace()
        assert description["error_budget"]["passed"]
        assert description["fit"]["n_samples"] == surrogate_mod.DEFAULT_FIT_SAMPLES


class TestArtifact:
    def _model_for(self, base, tmp_path):
        return surrogate_model_for(
            base, n_samples=64, seed=7, cache_dir=tmp_path
        )

    def test_round_trip_serves_identical_predictions(
        self, base, tmp_path, monkeypatch, resnet_ir
    ):
        first = self._model_for(base, tmp_path)
        artifacts = list(tmp_path.glob("surrogate_*.json"))
        assert len(artifacts) == 1
        surrogate_mod._SURROGATE_MEMO.clear()
        monkeypatch.setattr(
            surrogate_mod,
            "fit_surrogate",
            lambda *a, **k: pytest.fail("model should come from disk"),
        )
        warm = self._model_for(base, tmp_path)
        assert warm.digest == first.digest
        cols = base.config_space().columns()
        assert np.array_equal(
            SurrogatePlatform(base, warm).batch_network_latency_s(resnet_ir, cols),
            SurrogatePlatform(base, first).batch_network_latency_s(resnet_ir, cols),
        )

    def test_corrupt_artifact_refit(self, base, tmp_path):
        first = self._model_for(base, tmp_path)
        [artifact] = tmp_path.glob("surrogate_*.json")
        artifact.write_text("not json {")
        surrogate_mod._SURROGATE_MEMO.clear()
        refit = self._model_for(base, tmp_path)
        assert refit.digest == first.digest
        # ...and the refit replaced the corrupt file with a loadable one.
        assert SurrogateModel.load(artifact) is not None

    def test_unknown_format_refused(self, base, tmp_path):
        self._model_for(base, tmp_path)
        [artifact] = tmp_path.glob("surrogate_*.json")
        data = json.loads(artifact.read_text())
        data["format"] = 2
        artifact.write_text(json.dumps(data))
        assert SurrogateModel.load(artifact) is None

    def test_drifted_probes_refuse_the_artifact(self, base, tmp_path):
        # A silently edited calibration constant changes the platform's
        # exact answers but not its namespace; the stored probe values
        # must catch it and force a refit.
        first = self._model_for(base, tmp_path)
        [artifact] = tmp_path.glob("surrogate_*.json")
        data = json.loads(artifact.read_text())
        data["probes"]["area_mm2"][0] *= 1.01
        artifact.write_text(json.dumps(data))
        surrogate_mod._SURROGATE_MEMO.clear()
        fits = []
        real_fit = surrogate_mod.fit_surrogate
        try:
            surrogate_mod.fit_surrogate = lambda *a, **k: (
                fits.append(1),
                real_fit(*a, **k),
            )[1]
            refit = self._model_for(base, tmp_path)
        finally:
            surrogate_mod.fit_surrogate = real_fit
        assert fits == [1]
        assert refit.digest == first.digest

    def test_alien_namespace_refused(self, base, tmp_path):
        self._model_for(base, tmp_path)
        [artifact] = tmp_path.glob("surrogate_*.json")
        data = json.loads(artifact.read_text())
        data["base_namespace"] = "hw/some-other-platform"
        artifact.write_text(json.dumps(data))
        surrogate_mod._SURROGATE_MEMO.clear()
        refit = self._model_for(base, tmp_path)
        assert refit.base_namespace == base.cache_namespace()

    def test_failed_save_leaves_no_tmp_file(self, model, tmp_path, monkeypatch):
        path = tmp_path / "artifact.json"
        model.save(path)
        good = path.read_bytes()

        def die(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(surrogate_mod.os, "replace", die)
        with pytest.raises(OSError):
            model.save(path)
        monkeypatch.undo()
        assert list(tmp_path.glob("*.tmp*")) == []
        assert path.read_bytes() == good


class TestSampledFit:
    """Fits on spaces too large to enumerate (the charm-u50 regime)."""

    @pytest.fixture(scope="class")
    def charm(self):
        return build_platform("charm-u50")

    def test_sampled_fit_records_rejection_sampling(self, charm):
        # ~90% of charm-u50 configs are over budget, so a uniform draw
        # must be rejection-topped-up — and the artifact must say so.
        model = fit_surrogate(charm, n_samples=64, seed=7)
        assert model.sampling == {"mode": "rejection", "n_drawn": 64}

    def test_small_space_fit_records_no_sampling(self, base):
        # embedded-lite draws all-valid configs; the sampling record
        # stays empty so historical artifacts keep warm-loading.
        model = fit_surrogate(base, n_samples=64, seed=3)
        assert model.sampling is None

    def test_sampling_survives_serialization(self, charm, tmp_path):
        model = surrogate_model_for(
            charm, n_samples=64, seed=7, cache_dir=tmp_path
        )
        [artifact] = tmp_path.glob("surrogate_*.json")
        reloaded = SurrogateModel.load(artifact)
        assert reloaded is not None
        assert reloaded.sampling == model.sampling == {
            "mode": "rejection", "n_drawn": 64,
        }

    def test_artifact_key_separates_sampled_from_full(
        self, charm, base, tmp_path
    ):
        # The satellite contract: a sampled fit can never warm-load as
        # (or clobber) an enumerated fit — the mode is in the filename.
        surrogate_model_for(charm, n_samples=64, seed=7, cache_dir=tmp_path)
        [sampled] = tmp_path.glob("surrogate_*.json")
        assert "_sampled_" in sampled.name
        surrogate_model_for(base, n_samples=1024, seed=7, cache_dir=tmp_path)
        names = {p.name for p in tmp_path.glob("surrogate_*.json")}
        assert len(names) == 2
        assert any("_full_" in name for name in names)

    def test_sampled_fit_is_deterministic(self, charm):
        a = fit_surrogate(charm, n_samples=64, seed=7)
        b = fit_surrogate(charm, n_samples=64, seed=7)
        assert a.digest == b.digest


class TestValidate:
    def test_embedded_lite_clears_budget(self, base, model):
        report = validate_surrogate(base, n_samples=64, seed=1, model=model)
        assert report["budget"]["passed"], report["budget"]
        assert report["model_digest"] == model.digest
        for metric in ("area", "latency"):
            assert set(report[metric]) >= {
                "mae", "mean_rel_error", "max_rel_error", "rank_corr",
            }

    def test_validation_sample_is_disjoint_from_fit_stream(self, base, model):
        # Same (n, seed) inputs on both sides must still draw different
        # configs — validation scores generalization, not memorization.
        report = validate_surrogate(
            base, n_samples=model.n_samples, seed=model.seed, model=model
        )
        assert report["latency"]["mean_rel_error"] > 0

    def test_name_accepts_surrogate_prefix(self, model):
        by_base = validate_surrogate("embedded-lite", n_samples=32, model=model)
        by_twin = validate_surrogate(
            "surrogate:embedded-lite", n_samples=32, model=model
        )
        assert by_base == by_twin

    def test_tight_budget_fails(self, base, model):
        impossible = {
            "latency": {
                "mean_rel_error": 0.0,
                "max_rel_error": 0.0,
                "min_rank_corr": 1.1,
            }
        }
        report = validate_surrogate(
            base, n_samples=32, model=model, budget=impossible
        )
        assert not report["budget"]["passed"]
        assert not report["budget"]["metrics"]["latency"]["passed"]
