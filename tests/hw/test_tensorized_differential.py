"""Differential suite: tensorized evaluation == the scalar reference.

The tensorized fast path (:mod:`repro.hw.tensorized` +
``CodesignEvaluator.evaluate_batch`` with ``tensorize``) claims
bit-exactness, not approximation.  This file is the proof:

* for every registered platform with an enumerable space, sweep the
  ENTIRE ``config_space()`` asserting tensor == scalar bit-identity for
  area, latency, and validity (spaces beyond 500 configs run in the
  slow tier; ``embedded-lite``'s 288 keep full-space coverage in
  tier 1);
* a full-space *evaluator* differential: ``evaluate_batch`` under
  tensorization equals pointwise ``evaluate`` — metrics and rewards —
  for every (cell, config) pair;
* hypothesis property tests over random index subsets and random
  ``dac2020-scaled`` parameterizations;
* ask/tell golden replays with tensorization on, proving search
  trajectories are unchanged against the frozen legacy traces;
* the satellite regressions: a full-space sweep must leave the
  evaluator's LRU/hash memos empty, per-platform tensor disk caches
  must not cross-contaminate, and drifted models must never serve
  stale cached rows.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.hw.tensorized as tensorized_mod
from repro.core.evaluator import CodesignEvaluator
from repro.core.reward import RewardConfig
from repro.core.scenarios import PAPER_SCENARIOS
from repro.core.search_space import JointSearchSpace
from repro.core.study import StudySpec, build_study
from repro.experiments.search_study import make_bundle_evaluator
from repro.hw import build_platform, list_platforms
from repro.hw.tensorized import (
    TENSORIZE_MAX_CONFIGS,
    TensorizedSpace,
    TensorizeError,
    enumerable,
    skeleton_token,
    tensorized_space,
)
from repro.nasbench.compile import compile_cell_ops
from repro.nasbench.known_cells import googlenet_cell, resnet_cell
from repro.nasbench.skeleton import CIFAR10_SKELETON
from repro.search.combined import CombinedSearch
from repro.search.evolution import EvolutionSearch
from repro.search.phase import PhaseSearch
from repro.search.random_search import RandomSearch
from repro.search.separate import SeparateSearch

DATA_DIR = Path(__file__).resolve().parents[1] / "data"

#: Full-space sweeps beyond this many configs run in the slow tier;
#: embedded-lite (288) keeps entire-space coverage in every CI run.
FAST_SWEEP_LIMIT = 500


def _platform_params():
    """Every enumerable registered platform, slow-marked when large.

    Non-enumerable platforms (charm-u50's 393k-config tile space) have
    no tensorized path by design — full-space sweeps cannot apply;
    their batch==scalar contract is covered by the bounded probe suite
    in ``test_platforms.py`` and the surrogate differentials.
    """
    params = []
    for name in list_platforms():
        platform = build_platform(name)
        if not enumerable(platform):
            continue
        size = platform.config_space().size
        marks = [pytest.mark.slow] if size > FAST_SWEEP_LIMIT else []
        params.append(pytest.param(name, marks=marks, id=name))
    return params


@pytest.fixture(scope="module")
def platforms():
    return {name: build_platform(name) for name in list_platforms()}


@pytest.fixture(scope="module")
def tensors(platforms):
    """One hermetic (no disk cache) tensor per registered platform."""
    return {
        name: TensorizedSpace(platform, use_disk_cache=False)
        for name, platform in platforms.items()
        if enumerable(platform)
    }


@pytest.fixture(scope="module")
def resnet_ir():
    return compile_cell_ops(resnet_cell(), CIFAR10_SKELETON)


def _surrogate_pair(platform):
    """(scalar-reference, tensorized) evaluators over one platform.

    Two platform instances on purpose: shared state between the two
    evaluators could mask a divergence.
    """
    reference = CodesignEvaluator.from_surrogate(
        RewardConfig(), platform=build_platform(platform.name, platform.params)
    )
    fast = CodesignEvaluator.from_surrogate(RewardConfig(), platform=platform)
    fast.attach_tensorized(TensorizedSpace(platform, use_disk_cache=False))
    return reference, fast


class TestEnumerability:
    def test_shipped_platform_enumerability_split(self, platforms):
        # charm-u50's tile space deliberately exceeds the tensorization
        # cap (it exists to exercise sampled surrogate fits); every
        # other shipped platform must stay enumerable so its tensorized
        # fast path keeps working.
        oversized = {"charm-u50", "surrogate:charm-u50"}
        for name, platform in platforms.items():
            if name in oversized:
                assert not enumerable(platform), name
                assert platform.config_space().size > TENSORIZE_MAX_CONFIGS
            else:
                assert enumerable(platform), name

    def test_oversized_space_refused(self, platforms, monkeypatch):
        monkeypatch.setattr(tensorized_mod, "TENSORIZE_MAX_CONFIGS", 1)
        assert not enumerable(platforms["embedded-lite"])
        with pytest.raises(TensorizeError, match="tensorization cap"):
            TensorizedSpace(platforms["embedded-lite"], use_disk_cache=False)

    def test_evaluator_falls_back_when_not_enumerable(self, monkeypatch):
        platform = build_platform("embedded-lite")
        fast = CodesignEvaluator.from_surrogate(
            RewardConfig(), platform=platform, tensorize=True
        )
        monkeypatch.setattr(tensorized_mod, "TENSORIZE_MAX_CONFIGS", 1)
        spec = resnet_cell()
        space = platform.config_space()
        pairs = [(spec, space.config_at(i)) for i in range(0, space.size, 7)]
        got = fast.evaluate_batch(pairs)
        assert fast._tensor is None and fast._tensor_unavailable
        reference = CodesignEvaluator.from_surrogate(
            RewardConfig(), platform=build_platform("embedded-lite")
        )
        for pair, result in zip(pairs, got):
            expected = reference.evaluate(*pair)
            assert result.metrics == expected.metrics
            assert result.reward == expected.reward


class TestFullSpaceBitIdentity:
    """tensor[i] == scalar(config_at(i)) over the ENTIRE space."""

    @pytest.mark.parametrize("name", _platform_params())
    def test_area_full_space(self, platforms, tensors, name):
        platform, tensor = platforms[name], tensors[name]
        space = platform.config_space()
        scalar = np.array(
            [platform.area_mm2(space.config_at(i)) for i in range(space.size)]
        )
        assert np.array_equal(scalar, tensor.area_mm2)

    @pytest.mark.parametrize("name", _platform_params())
    def test_validity_full_space(self, platforms, tensors, name):
        platform, tensor = platforms[name], tensors[name]
        space = platform.config_space()
        scalar = np.array(
            [platform.config_valid(space.config_at(i)) for i in range(space.size)]
        )
        assert np.array_equal(scalar, tensor.valid)

    @pytest.mark.parametrize("name", _platform_params())
    def test_latency_full_space(self, platforms, tensors, name, resnet_ir):
        platform, tensor = platforms[name], tensors[name]
        space = platform.config_space()
        row = tensor.latency_row("resnet", lambda: resnet_ir)
        scalar = np.array(
            [
                platform.network_latency_s(resnet_ir, space.config_at(i))
                for i in range(space.size)
            ]
        )
        assert np.array_equal(scalar, row)

    @pytest.mark.parametrize("name", _platform_params())
    def test_evaluate_batch_full_space_differential(self, platforms, name):
        """Tensorized evaluate_batch == pointwise evaluate, full space."""
        platform = platforms[name]
        reference, fast = _surrogate_pair(platform)
        spec = resnet_cell()
        space = platform.config_space()
        pairs = [(spec, space.config_at(i)) for i in range(space.size)]
        got = fast.evaluate_batch(pairs)
        for (pair_spec, config), result in zip(pairs, got):
            expected = reference.evaluate(pair_spec, config)
            assert result.metrics == expected.metrics, config
            assert result.reward == expected.reward, config
            assert result.spec is pair_spec and result.config is config


class TestMemoBypassRegression:
    """Satellite: the tensorized path must not touch the scalar memos."""

    def test_full_space_sweep_leaves_lrus_empty(self, platforms):
        platform = platforms["embedded-lite"]
        _, fast = _surrogate_pair(platform)
        spec = resnet_cell()
        space = platform.config_space()
        fast.evaluate_batch(
            [(spec, space.config_at(i)) for i in range(space.size)]
        )
        assert len(fast._area_cache) == 0
        assert len(fast._latency_cache) == 0
        assert len(fast._content_hash_memo) == 0
        assert len(fast._config_index_memo) == 0
        # The tensorized path keeps its own bounded memos instead:
        # one (metrics, reward) per visited (cell, index), one hash
        # per distinct cell content.
        assert len(fast._tensor_results) == space.size
        assert len(fast._tensor_hash_memo) == 1

    def test_eval_cache_not_consulted_on_tensorized_path(self, platforms):
        class ExplodingCache:
            def get(self, *key):  # pragma: no cover - must never run
                raise AssertionError("eval cache consulted on tensorized path")

            def put(self, entry):  # pragma: no cover - must never run
                raise AssertionError("eval cache written on tensorized path")

        platform = platforms["embedded-lite"]
        _, fast = _surrogate_pair(platform)
        fast.attach_eval_cache(ExplodingCache())
        spec = resnet_cell()
        space = platform.config_space()
        results = fast.evaluate_batch([(spec, space.config_at(0))])
        assert results[0].metrics is not None


class TestIndexCodec:
    @pytest.mark.parametrize("name", _platform_params())
    def test_index_roundtrip_full_space(self, platforms, name):
        space = platforms[name].config_space()
        for i in range(space.size):
            assert space.index_of(space.config_at(i)) == i

    def test_config_at_interns(self, platforms):
        space = platforms["dac2020"].config_space()
        assert space.config_at(17) is space.config_at(17)

    def test_index_of_actions_matches_decode(self, platforms, rng):
        for platform in platforms.values():
            space = platform.config_space()
            for _ in range(50):
                actions = [int(rng.integers(0, v)) for v in space.vocab_sizes]
                index = space.index_of_actions(actions)
                assert space.config_at(index) == space.decode(actions)
                assert index == space.index_of(space.decode(actions))

    def test_index_of_actions_validates_like_decode(self, platforms):
        space = platforms["dac2020"].config_space()
        with pytest.raises(ValueError, match="expected .* actions"):
            space.index_of_actions([0])
        bad = [0] * space.num_tokens
        bad[0] = space.vocab_sizes[0]
        with pytest.raises(ValueError, match="out of range"):
            space.index_of_actions(bad)

    def test_joint_space_hw_index_of(self, micro4_bundle, rng):
        joint = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        for _ in range(25):
            actions = joint.random_actions(rng)
            _, config = joint.decode(actions)
            assert joint.hw_index_of(actions) == (
                joint.accelerator_space.index_of(config)
            )

    def test_tensor_index_of_matches_space(self, platforms, tensors, rng):
        for name, tensor in tensors.items():
            space = platforms[name].config_space()
            for i in rng.integers(0, space.size, size=32):
                config = space.config_at(int(i))
                assert tensor.index_of(config) == int(i)
                # Identity-memoized: a second resolve hits the memo.
                assert tensor.index_of(config) == int(i)

    def test_tensor_index_of_non_interned_config(self, platforms, tensors):
        tensor = tensors["embedded-lite"]
        space = platforms["embedded-lite"].config_space()
        interned = space.config_at(5)
        clone = type(interned)(**interned.to_dict())
        assert clone is not interned
        assert tensor.index_of(clone) == 5


class TestHypothesisDifferential:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_index_subsets(self, platforms, tensors, data):
        name = data.draw(st.sampled_from(sorted(tensors)))
        platform, tensor = platforms[name], tensors[name]
        space = platform.config_space()
        indices = data.draw(
            st.lists(
                st.integers(0, space.size - 1), min_size=1, max_size=16
            )
        )
        spec = data.draw(st.sampled_from((resnet_cell(), googlenet_cell())))
        ir = compile_cell_ops(spec, CIFAR10_SKELETON)
        row = tensor.latency_row(spec.spec_hash(), lambda: ir)
        for i in indices:
            config = space.config_at(i)
            assert tensor.area_mm2[i] == platform.area_mm2(config)
            assert row[i] == platform.network_latency_s(ir, config)
            assert tensor.valid[i] == platform.config_valid(config)

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_scaled_platform_params(self, data, resnet_ir):
        """Tensorization stays exact across the parametric family."""
        params = {
            "clock_mhz": data.draw(
                st.floats(50.0, 600.0, allow_nan=False, allow_infinity=False)
            ),
            "axi_clock_mhz": data.draw(
                st.floats(100.0, 500.0, allow_nan=False, allow_infinity=False)
            ),
            "compute_efficiency": data.draw(st.floats(0.1, 1.0)),
            "mem_efficiency": data.draw(st.floats(0.1, 1.0)),
            "area_scale": data.draw(st.floats(0.25, 4.0)),
            "max_pixel_par": data.draw(st.sampled_from([None, 8, 16])),
        }
        platform = build_platform("dac2020-scaled", params)
        tensor = TensorizedSpace(platform, use_disk_cache=False)
        space = platform.config_space()
        row = tensor.latency_row("resnet", lambda: resnet_ir)
        rng = np.random.default_rng(0)
        for i in rng.integers(0, space.size, size=12):
            config = space.config_at(int(i))
            assert tensor.area_mm2[i] == platform.area_mm2(config)
            assert row[i] == platform.network_latency_s(resnet_ir, config)


# ---------------------------------------------------------------------------
# Golden ask/tell replays under tensorization
# ---------------------------------------------------------------------------

GOLDEN_NUM_STEPS = 40

#: Must stay in sync with tests/data/generate_ask_tell_goldens.py.
STRATEGY_FACTORIES = {
    "random": lambda space, seed: RandomSearch(space, seed=seed),
    "evolution": lambda space, seed: EvolutionSearch(
        space, seed=seed, population_size=8, tournament_size=3
    ),
    "combined": lambda space, seed: CombinedSearch(space, seed=seed),
    "separate": lambda space, seed: SeparateSearch(
        space, seed=seed, cnn_fraction=0.6
    ),
    "phase": lambda space, seed: PhaseSearch(
        space, seed=seed, cnn_phase_steps=10, hw_phase_steps=5
    ),
}


def visit_digest(archive) -> str:
    """md5 over the visited (spec_hash, config_key, phase) sequence."""
    parts = []
    for e in archive.entries:
        spec_part = (
            e.spec.spec_hash() if e.spec is not None and e.spec.valid else "invalid"
        )
        parts.append(f"{spec_part}|{tuple(e.config.to_dict().values())}|{e.phase}")
    return hashlib.md5("\n".join(parts).encode()).hexdigest()


@pytest.fixture(scope="module")
def goldens():
    arrays = np.load(DATA_DIR / "ask_tell_goldens.npz")
    meta = json.loads((DATA_DIR / "ask_tell_goldens.json").read_text())
    assert meta["num_steps"] == GOLDEN_NUM_STEPS
    return arrays, meta["digests"]


class TestGoldenReplaysTensorized:
    """Tensorization must not change a single search trajectory.

    Each (strategy, scenario) cell replays seed 0 of the frozen legacy
    traces with the tensorized fast path armed; reward traces and the
    visited (spec, config, phase) sequences must stay bit-identical to
    the pre-refactor per-point loops.
    """

    @pytest.mark.parametrize("strategy_name", sorted(STRATEGY_FACTORIES))
    @pytest.mark.parametrize("scenario_name", sorted(PAPER_SCENARIOS))
    def test_trace_matches_golden(
        self, micro4_bundle, goldens, strategy_name, scenario_name
    ):
        seed = 0
        arrays, digests = goldens
        scenario = PAPER_SCENARIOS[scenario_name](micro4_bundle.bounds)
        evaluator = make_bundle_evaluator(micro4_bundle, scenario)
        evaluator.attach_tensorized(
            TensorizedSpace(evaluator.platform, use_disk_cache=False)
        )
        assert evaluator.tensorize
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        strategy = STRATEGY_FACTORIES[strategy_name](space, seed)
        result = strategy.run(evaluator, GOLDEN_NUM_STEPS, batch_size=1)
        key = f"{strategy_name}__{scenario_name}__{seed}"
        assert np.array_equal(
            result.reward_trace(), arrays[key], equal_nan=True
        ), "tensorized reward trace diverged from the legacy traces"
        assert visit_digest(result.archive) == digests[key], (
            "tensorized visit sequence diverged from the legacy traces"
        )


# ---------------------------------------------------------------------------
# Disk cache
# ---------------------------------------------------------------------------

class TestDiskCache:
    def test_round_trip(self, tmp_path, resnet_ir):
        platform = build_platform("embedded-lite")
        t1 = TensorizedSpace(platform, cache_dir=tmp_path)
        row1 = t1.latency_row("resnet", lambda: resnet_ir)
        t1.save()
        t2 = TensorizedSpace(platform, cache_dir=tmp_path)
        assert t2.loaded_rows == 1
        row2 = t2.latency_row(
            "resnet", lambda: pytest.fail("row should come from disk")
        )
        assert np.array_equal(row1, row2)
        assert np.array_equal(t1.area_mm2, t2.area_mm2)

    def test_autosave(self, tmp_path, resnet_ir):
        platform = build_platform("embedded-lite")
        tensor = TensorizedSpace(platform, cache_dir=tmp_path, autosave_every=1)
        assert not tensor.cache_file.exists()
        tensor.latency_row("resnet", lambda: resnet_ir)
        assert tensor.cache_file.exists()

    def test_per_platform_files_do_not_collide(self, tmp_path):
        def cache_file(name, params=None):
            return TensorizedSpace(
                build_platform(name, params),
                cache_dir=tmp_path,
                use_disk_cache=False,
            ).cache_file

        reference = cache_file("dac2020")
        embedded = cache_file("embedded-lite")
        scaled = cache_file("dac2020-scaled", {"clock_mhz": 300.0})
        # Any result-affecting difference keys a different file.
        assert len({reference, embedded, scaled}) == 3
        # ... while dac2020-scaled at its defaults IS the reference
        # (bit-identical models, same cache_namespace), so sharing the
        # reference's tensor file is intentional, not contamination.
        assert cache_file("dac2020-scaled") == reference

    def test_skeleton_keys_the_file(self, tiny_skeleton):
        platform = build_platform("embedded-lite")
        a = TensorizedSpace(platform, use_disk_cache=False)
        b = TensorizedSpace(platform, skeleton=tiny_skeleton, use_disk_cache=False)
        assert a.cache_file != b.cache_file
        assert skeleton_token(CIFAR10_SKELETON) != skeleton_token(tiny_skeleton)

    def test_drifted_models_discard_cached_rows(self, tmp_path, resnet_ir):
        platform = build_platform("embedded-lite")
        t1 = TensorizedSpace(platform, cache_dir=tmp_path)
        t1.latency_row("resnet", lambda: resnet_ir)
        t1.save()
        with np.load(t1.cache_file) as data:
            arrays = dict(data)
        arrays["area_mm2"] = arrays["area_mm2"] * 1.01
        np.savez_compressed(t1.cache_file, **arrays)
        t2 = TensorizedSpace(platform, cache_dir=tmp_path)
        # The fresh eager arrays win; the stale latency rows are dropped.
        assert t2.loaded_rows == 0
        assert np.array_equal(t2.area_mm2, t1.area_mm2)

    def test_corrupt_cache_file_ignored(self, tmp_path):
        platform = build_platform("embedded-lite")
        t1 = TensorizedSpace(platform, cache_dir=tmp_path)
        t1.save()
        t1.cache_file.write_bytes(b"not an npz archive")
        t2 = TensorizedSpace(platform, cache_dir=tmp_path)
        assert t2.loaded_rows == 0

    def test_row_lru_bounded_and_disk_cap(self, tmp_path, resnet_ir):
        platform = build_platform("embedded-lite")
        tensor = TensorizedSpace(
            platform, cache_dir=tmp_path, max_rows=4, max_disk_rows=2
        )
        for i in range(6):
            tensor.latency_row(f"cell{i}", lambda: resnet_ir)
        assert tensor.num_latency_rows == 4
        tensor.save()
        with np.load(tensor.cache_file) as data:
            assert data["latency_s"].shape[0] == 2

    def test_disk_rows_stored_most_recent_first(self, tmp_path, resnet_ir):
        # The regression: save() once persisted the kept slice in LRU
        # iteration order (stale -> fresh), so on-disk row_hashes[0]
        # was the OLDEST kept row — any truncating consumer dropped
        # the newest rows first, contradicting the retention policy.
        platform = build_platform("embedded-lite")
        tensor = TensorizedSpace(
            platform, cache_dir=tmp_path, max_rows=8, max_disk_rows=3
        )
        for i in range(5):
            tensor.latency_row(f"cell{i}", lambda: resnet_ir)
        # Refresh cell1: it must now outrank cell2/cell3 on disk.
        tensor.latency_row("cell1", lambda: pytest.fail("row is resident"))
        tensor.save()
        with np.load(tensor.cache_file) as data:
            hashes = [str(h) for h in data["row_hashes"]]
        assert hashes == ["cell1", "cell4", "cell3"]
        # Saving must not itself perturb recency (snapshot, not
        # __getitem__): an immediate re-save keeps the same order.
        tensor.save()
        with np.load(tensor.cache_file) as data:
            assert [str(h) for h in data["row_hashes"]] == hashes

    def test_retention_round_trip_keeps_newest_rows(self, tmp_path, resnet_ir):
        platform = build_platform("embedded-lite")
        t1 = TensorizedSpace(platform, cache_dir=tmp_path, max_disk_rows=2)
        for i in range(4):
            t1.latency_row(f"cell{i}", lambda: resnet_ir)
        t1.save()
        t2 = TensorizedSpace(platform, cache_dir=tmp_path, max_disk_rows=2)
        assert t2.loaded_rows == 2
        for newest in ("cell2", "cell3"):
            t2.latency_row(newest, lambda: pytest.fail("newest rows must survive"))
        # Reloading into a smaller max_rows evicts the *older* stored
        # row — the load replays stale-first so LRU recency matches
        # the writer's.
        t3 = TensorizedSpace(
            platform, cache_dir=tmp_path, max_rows=1, max_disk_rows=2
        )
        assert t3.num_latency_rows == 1
        t3.latency_row("cell3", lambda: pytest.fail("the newest row survives"))

    def test_zero_disk_rows_persists_no_rows(self, tmp_path, resnet_ir):
        platform = build_platform("embedded-lite")
        tensor = TensorizedSpace(platform, cache_dir=tmp_path, max_disk_rows=0)
        tensor.latency_row("resnet", lambda: resnet_ir)
        tensor.save()
        with np.load(tensor.cache_file) as data:
            assert data["latency_s"].shape == (0, tensor.size)

    def test_failed_save_leaves_no_tmp_file(self, tmp_path, resnet_ir, monkeypatch):
        # The regression: np.savez_compressed dying mid-write (full
        # disk) leaked a .tmp<pid>.npz sibling next to the cache.
        platform = build_platform("embedded-lite")
        tensor = TensorizedSpace(platform, cache_dir=tmp_path)
        tensor.latency_row("resnet", lambda: resnet_ir)
        tensor.save()
        good = tensor.cache_file.read_bytes()
        tensor.latency_row("googlenet", lambda: resnet_ir)

        def die_mid_write(file, **arrays):
            Path(file).write_bytes(b"half an archive")
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(tensorized_mod.np, "savez_compressed", die_mid_write)
        with pytest.raises(OSError):
            tensor.save()
        monkeypatch.undo()
        assert list(tmp_path.glob("*.tmp*")) == []
        # ...and the atomic contract held: the previous archive is intact.
        assert tensor.cache_file.read_bytes() == good
        tensor.save()
        t2 = TensorizedSpace(platform, cache_dir=tmp_path)
        assert t2.loaded_rows == 2

    def test_process_memo_reuses_enumeration(self, tmp_path):
        platform = build_platform("embedded-lite")
        a = tensorized_space(platform, cache_dir=tmp_path)
        b = tensorized_space(build_platform("embedded-lite"), cache_dir=tmp_path)
        assert a is b


# ---------------------------------------------------------------------------
# Cross-platform sweeps (satellite)
# ---------------------------------------------------------------------------

class TestCrossPlatformSweep:
    """Tensorize one platform, not the other, in one StudySpec."""

    SPEC = {
        "name": "mixed-tensorize",
        "strategies": [{"name": "random"}],
        "scenarios": ["unconstrained"],
        "evaluator": {"source": "surrogate"},
        "hardware": [
            {"name": "embedded-lite", "tensorize": True},
            {"name": "dac2020-scaled", "params": {"clock_mhz": 300.0}},
        ],
        "execution": {"num_steps": 6, "num_repeats": 1},
    }

    def test_per_platform_tensorize_flags(self):
        spec = StudySpec.from_dict(self.SPEC)
        study = build_study(spec)
        evaluators = {}
        for job in study.jobs:
            evaluator = job.evaluator_factory()
            evaluators[job.label.split(":")[0]] = evaluator
        assert evaluators["embedded-lite"].tensorize
        assert not evaluators["dac2020-scaled"].tensorize

    def test_hardware_override_beats_execution_default(self):
        data = dict(self.SPEC)
        data["execution"] = {**self.SPEC["execution"], "tensorize": True}
        data["hardware"] = [
            {"name": "embedded-lite", "tensorize": False},
            {"name": "dac2020-scaled"},
        ]
        study = build_study(StudySpec.from_dict(data))
        flags = {
            job.label.split(":")[0]: job.evaluator_factory().tensorize
            for job in study.jobs
        }
        assert not flags["embedded-lite"]
        assert flags["dac2020-scaled"]

    def test_namespaces_do_not_cross_contaminate_disk_cache(
        self, tmp_path, monkeypatch, resnet_ir
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        written = {}
        for name in ("embedded-lite", "dac2020-scaled"):
            tensor = tensorized_space(build_platform(name))
            tensor.latency_row("resnet", lambda: resnet_ir)
            written[name] = tensor.save()
        assert written["embedded-lite"] != written["dac2020-scaled"]
        assert all(
            path.parent == tmp_path / "tensorized" for path in written.values()
        )
        # Reloading each platform's file serves only its own rows,
        # bit-identical to that platform's scalar models.
        for name, platform in (
            (n, build_platform(n)) for n in ("embedded-lite", "dac2020-scaled")
        ):
            fresh = TensorizedSpace(platform, cache_dir=tmp_path / "tensorized")
            assert fresh.loaded_rows == 1
            row = fresh.latency_row(
                "resnet", lambda: pytest.fail("row should come from disk")
            )
            space = platform.config_space()
            for i in (0, space.size // 2, space.size - 1):
                assert row[i] == platform.network_latency_s(
                    resnet_ir, space.config_at(i)
                )

    def test_mixed_sweep_outcomes_match_untensorized_run(
        self, tmp_path, monkeypatch
    ):
        from repro.core.study import run_study

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))

        def outcomes(spec_dict):
            result = run_study(StudySpec.from_dict(spec_dict))
            return {
                key: {
                    strategy: outcome.mean_best_reward()
                    for strategy, outcome in by_strategy.items()
                }
                for key, by_strategy in result.outcomes.items()
            }

        plain = dict(self.SPEC)
        plain["hardware"] = [
            {"name": "embedded-lite"},
            {"name": "dac2020-scaled", "params": {"clock_mhz": 300.0}},
        ]
        assert outcomes(self.SPEC) == outcomes(plain)


class TestGoldenTensorSlices:
    """Pinned hex-encoded tensor slices per shipped platform.

    The tensor==scalar differential tests above prove the two paths
    agree — but cannot see *lockstep drift*, where a hardware-model
    change moves both paths together.  These goldens pin absolute
    float64 bit patterns at 16 evenly-spaced indices so any model
    change fails loudly (regenerate deliberately with
    ``tests/data/generate_tensorized_goldens.py``).
    """

    @pytest.fixture(scope="class")
    def goldens(self):
        return json.loads((DATA_DIR / "tensorized_goldens.json").read_text())

    def test_covers_every_registered_platform(self, goldens):
        # surrogate:* platforms are derived from the pinned base models;
        # their own drift guard is the artifact probe contract
        # (tests/hw/test_hw_surrogate.py), not golden tensor slices.
        pinned = {entry["platform"] for entry in goldens.values()}
        exact = {
            name for name in list_platforms() if not name.startswith("surrogate:")
        }
        assert pinned == exact

    def test_slices_match_goldens(self, goldens, resnet_ir):
        for label, entry in goldens.items():
            platform = build_platform(entry["platform"], entry["params"] or None)
            assert platform.cache_namespace() == entry["namespace"], label
            if entry.get("tensorized", True):
                tensor = TensorizedSpace(platform, use_disk_cache=False)
                assert tensor.size == entry["size"], label
                area = tensor.area_mm2
                valid = tensor.valid
                latency = tensor.latency_row("resnet", lambda: resnet_ir)
            else:
                # Non-enumerable platform: the goldens pin the batched
                # column queries at the probe indices instead.
                space = platform.config_space()
                assert space.size == entry["size"], label
                probe = np.asarray(entry["indices"], dtype=np.int64)
                cols = space.columns_at(probe)
                area = dict(zip(entry["indices"], platform.batch_area_mm2(cols)))
                valid = dict(
                    zip(entry["indices"], platform.batch_config_valid(cols))
                )
                latency = dict(
                    zip(
                        entry["indices"],
                        platform.batch_network_latency_s(resnet_ir, cols),
                    )
                )
            for pos, index in enumerate(entry["indices"]):
                assert (
                    float(area[index]).hex() == entry["area_hex"][pos]
                ), f"{label}: area drift at index {index}"
                assert bool(valid[index]) == entry["valid"][pos], (
                    f"{label}: validity drift at index {index}"
                )
                assert (
                    float(latency[index]).hex() == entry["latency_hex"][pos]
                ), f"{label}: latency drift at index {index}"
