"""Tests for the persistent evaluation cache."""

import sqlite3

import pytest

from repro.core.scenarios import unconstrained
from repro.experiments.search_study import make_bundle_evaluator
from repro.nasbench.known_cells import resnet_cell
from repro.parallel import CacheEntry, EvalCache
from repro.training.cache import CachedTrainer
from repro.training.surrogate_trainer import SurrogateCifar100Trainer


def entry(scenario="s", spec="abc", config="(1,)", acc=71.5, lat=0.02, area=150.0):
    return CacheEntry(scenario, spec, config, acc, lat, area)


class TestRoundTrip:
    def test_cold_write_warm_read(self, tmp_path):
        path = tmp_path / "ec.sqlite"
        with EvalCache(path) as cache:
            cache.put(entry())
            assert cache.flush() == 1
        with EvalCache(path) as warm:
            hit = warm.get("s", "abc", "(1,)")
            assert hit is not None
            assert hit.accuracy == 71.5
            assert hit.latency_s == 0.02
            assert hit.area_mm2 == 150.0
            assert warm.stats["hits"] == 1
            assert len(warm) == 1

    def test_unevaluable_rows_round_trip(self, tmp_path):
        path = tmp_path / "ec.sqlite"
        with EvalCache(path) as cache:
            cache.put(entry(acc=None, lat=None, area=None))
            cache.flush()
        with EvalCache(path) as warm:
            hit = warm.get("s", "abc", "(1,)")
            assert hit is not None and hit.accuracy is None

    def test_extra_payload_round_trips(self, tmp_path):
        path = tmp_path / "ec.sqlite"
        with EvalCache(path) as cache:
            cache.put(
                CacheEntry("t", "abc", "-", 70.0, None, None, extra={"gpu_hours": 1.5})
            )
            cache.flush()
        assert EvalCache(path).get("t", "abc", "-").extra == {"gpu_hours": 1.5}

    def test_miss_counts(self):
        cache = EvalCache()
        assert cache.get("s", "nope", "(1,)") is None
        assert cache.stats["misses"] == 1

    def test_keys_are_namespaced(self, tmp_path):
        cache = EvalCache(tmp_path / "ec.sqlite")
        cache.put(entry(scenario="a"))
        cache.flush()
        assert cache.get("b", "abc", "(1,)") is None

    def test_pending_visible_before_flush(self):
        cache = EvalCache()
        cache.put(entry())
        assert cache.get("s", "abc", "(1,)").accuracy == 71.5

    def test_replace_keeps_single_row(self, tmp_path):
        cache = EvalCache(tmp_path / "ec.sqlite")
        cache.put(entry(acc=70.0))
        cache.flush()
        cache.put(entry(acc=71.0))
        cache.flush()
        assert len(cache) == 1
        assert EvalCache(tmp_path / "ec.sqlite").get("s", "abc", "(1,)").accuracy == 71.0


class TestMissStaleness:
    """Misses memoized before a flush must not outlive it (regression:
    a long-lived parent sharing a store with concurrent independent
    runs memoized its first miss forever and never saw their rows)."""

    def test_flush_invalidates_negative_memos(self, tmp_path):
        path = tmp_path / "ec.sqlite"
        reader = EvalCache(path)
        assert reader.get("s", "abc", "(1,)") is None  # memoized miss

        writer = EvalCache(path)  # a concurrent independent run
        writer.put(entry())
        writer.flush()

        assert reader.get("s", "abc", "(1,)") is None  # still memoized
        reader.flush()  # sync point: forget misses
        hit = reader.get("s", "abc", "(1,)")
        assert hit is not None and hit.accuracy == 71.5

    def test_merge_invalidates_negative_memos(self, tmp_path):
        path = tmp_path / "ec.sqlite"
        reader = EvalCache(path)
        assert reader.get("s", "abc", "(1,)") is None

        EvalCache(path).merge([entry()])

        reader.merge([])  # the parent's per-pool sync point
        assert reader.get("s", "abc", "(1,)") is not None

    def test_positive_memos_survive_flush(self, tmp_path):
        path = tmp_path / "ec.sqlite"
        cache = EvalCache(path)
        cache.put(entry())
        cache.flush()
        assert cache.get("s", "abc", "(1,)") is not None
        cache.flush()
        hits_before = cache.hits
        assert cache.get("s", "abc", "(1,)").accuracy == 71.5
        assert cache.hits == hits_before + 1


class TestCloseDurability:
    """close()/__exit__ must persist what put() buffered.

    The regression: close() used to drop the connection without
    flushing, so ``with EvalCache(path) as c: c.put(...)`` — which
    reads as "durably persisted" — silently discarded every row still
    sitting in ``_pending``.
    """

    def test_close_flushes_pending_rows(self, tmp_path):
        path = tmp_path / "ec.sqlite"
        cache = EvalCache(path)
        cache.put(entry())
        cache.close()  # no explicit flush()
        assert EvalCache(path).get("s", "abc", "(1,)") is not None

    def test_context_manager_persists_buffered_rows(self, tmp_path):
        path = tmp_path / "ec.sqlite"
        with EvalCache(path) as cache:
            cache.put(entry())
        assert EvalCache(path).get("s", "abc", "(1,)") is not None

    def test_close_is_idempotent(self, tmp_path):
        cache = EvalCache(tmp_path / "ec.sqlite")
        cache.put(entry())
        cache.close()
        cache.close()  # flush sees an empty buffer; re-close is a no-op

    def test_read_only_close_never_writes(self, tmp_path):
        path = tmp_path / "ec.sqlite"
        with EvalCache(path) as writer:
            writer.put(entry())
        view = EvalCache(path, read_only=True)
        view.put(entry(spec="buffered-in-view"))
        view.close()  # a read-only view's buffer is drained, not flushed
        reread = EvalCache(path)
        assert reread.get("s", "buffered-in-view", "(1,)") is None
        assert reread.get("s", "abc", "(1,)") is not None


class TestCorruption:
    def test_corrupted_file_falls_back_to_cold(self, tmp_path):
        path = tmp_path / "ec.sqlite"
        path.write_bytes(b"this is not a sqlite database at all" * 100)
        cache = EvalCache(path)
        assert cache.recovered
        assert len(cache) == 0
        cache.put(entry())
        cache.flush()
        assert EvalCache(path).get("s", "abc", "(1,)") is not None
        assert path.with_suffix(".sqlite.corrupt").exists()

    def test_truncated_database_falls_back(self, tmp_path):
        path = tmp_path / "ec.sqlite"
        with EvalCache(path) as cache:
            cache.put(entry())
            cache.flush()
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        try:
            cache = EvalCache(path)
            rows = len(cache)
        except sqlite3.DatabaseError:
            pytest.fail("corrupted store must not raise")
        assert rows == 0 or not cache.recovered


class TestReadOnlyWorkers:
    def test_read_only_corrupt_file_untouched(self, tmp_path):
        path = tmp_path / "ec.sqlite"
        garbage = b"this is not a sqlite database" * 200
        path.write_bytes(garbage)
        worker = EvalCache(path, read_only=True)
        assert worker.recovered
        assert worker.get("s", "abc", "(1,)") is None
        # the shared file must not be renamed, recreated, or modified
        assert path.read_bytes() == garbage
        assert not path.with_suffix(".sqlite.corrupt").exists()

    def test_read_only_missing_file_serves_cold(self, tmp_path):
        path = tmp_path / "missing.sqlite"
        worker = EvalCache(path, read_only=True)
        assert worker.get("s", "abc", "(1,)") is None
        assert not path.exists()

    def test_read_only_never_writes(self, tmp_path):
        path = tmp_path / "ec.sqlite"
        EvalCache(path).close()
        worker = EvalCache(path, read_only=True)
        worker.put(entry())
        assert worker.flush() == 0
        assert len(EvalCache(path)) == 0

    def test_drain_then_merge(self, tmp_path):
        path = tmp_path / "ec.sqlite"
        parent = EvalCache(path)
        worker = EvalCache(path, read_only=True)
        worker.put(entry())
        delta = worker.drain_pending()
        assert [e.key for e in delta] == [("s", "abc", "(1,)")]
        assert parent.merge(delta) == 1
        assert len(parent) == 1


class TestEvaluatorIntegration:
    def test_evaluator_consults_cache_before_computing(self, micro4_bundle):
        scenario = unconstrained(micro4_bundle.bounds)
        evaluator = make_bundle_evaluator(micro4_bundle, scenario)
        cache = EvalCache()
        evaluator.attach_eval_cache(cache, scenario="test")
        spec = micro4_bundle.database.records[0].spec
        config = micro4_bundle.space.config_at(0)
        first = evaluator.evaluate(spec, config)
        assert cache.stats["misses"] == 1
        again = evaluator.evaluate(spec, config)
        assert cache.stats["hits"] >= 1
        assert again.metrics == first.metrics

    def test_warm_evaluator_matches_cold(self, micro4_bundle, tmp_path):
        scenario = unconstrained(micro4_bundle.bounds)
        path = tmp_path / "ec.sqlite"
        spec = micro4_bundle.database.records[1].spec
        config = micro4_bundle.space.config_at(17)

        cold_cache = EvalCache(path)
        cold = make_bundle_evaluator(micro4_bundle, scenario)
        cold.attach_eval_cache(cold_cache, scenario="test")
        cold_result = cold.evaluate(spec, config)
        cold_cache.flush()

        warm_cache = EvalCache(path)
        warm = make_bundle_evaluator(micro4_bundle, scenario)
        warm.attach_eval_cache(warm_cache, scenario="test")
        warm_result = warm.evaluate(spec, config)
        assert warm_cache.stats["hits"] == 1
        assert warm_result.metrics == cold_result.metrics
        assert warm_result.reward.value == cold_result.reward.value

    def test_evaluate_batch_matches_scalar(self, micro4_bundle):
        scenario = unconstrained(micro4_bundle.bounds)
        evaluator = make_bundle_evaluator(micro4_bundle, scenario)
        records = micro4_bundle.database.records
        pairs = [
            (records[i % len(records)].spec, micro4_bundle.space.config_at(i * 7))
            for i in range(6)
        ] * 2  # duplicates exercise the dedup path
        batch = evaluator.evaluate_batch(pairs)
        reference = make_bundle_evaluator(micro4_bundle, scenario)
        assert len(batch) == len(pairs)
        assert evaluator.num_evaluations == len(pairs)
        for (spec, config), result in zip(pairs, batch):
            assert result.reward.value == reference.evaluate(spec, config).reward.value


class TestCachedTrainerStore:
    def test_warm_run_pays_no_gpu_hours(self):
        store = EvalCache()
        first = CachedTrainer(SurrogateCifar100Trainer(), store=store, namespace="t")
        outcome = first.train_and_score(resnet_cell())
        assert first.total_gpu_hours() > 0

        second = CachedTrainer(SurrogateCifar100Trainer(), store=store, namespace="t")
        warm = second.train_and_score(resnet_cell())
        assert warm.accuracy == outcome.accuracy
        assert warm.gpu_hours == outcome.gpu_hours
        assert second.hits == 1 and second.misses == 0
        assert second.total_gpu_hours() == 0.0
        assert second.oracle.num_trainings == 0

    def test_namespaces_isolate_oracles(self):
        store = EvalCache()
        a = CachedTrainer(SurrogateCifar100Trainer(seed=1), store=store, namespace="a")
        b = CachedTrainer(SurrogateCifar100Trainer(seed=2), store=store, namespace="b")
        acc_a = a.train_and_score(resnet_cell()).accuracy
        acc_b = b.train_and_score(resnet_cell()).accuracy
        assert acc_a != acc_b
        assert b.misses == 1


class TestEvictionUnderConcurrentMerge:
    """Absorbing worker results into a tiny-capacity parent evaluator
    while a sibling's rows merge into the shared sqlite store must keep
    the LRU memos bounded, lose no persistent rows, and change no
    values (evicted entries recompute bit-identically)."""

    def test_absorb_batch_respects_capacity_during_merge(
        self, micro4_bundle, tmp_path
    ):
        from repro.core.evaluator import CodesignEvaluator
        from repro.search.runner import _absorb_batch

        scenario = unconstrained(micro4_bundle.bounds)
        parent = CodesignEvaluator.from_database(
            micro4_bundle.database, scenario, cache_capacity=2
        )
        parent.attach_latency_table(
            micro4_bundle.latency_ms,
            micro4_bundle.row_of_hash(),
            micro4_bundle.space,
        )
        path = tmp_path / "ec.sqlite"
        parent.attach_eval_cache(EvalCache(path), scenario="test")

        worker = make_bundle_evaluator(micro4_bundle, scenario)
        records = micro4_bundle.database.records
        pairs = [
            (records[i % len(records)].spec, micro4_bundle.space.config_at(i * 11))
            for i in range(8)
        ]
        results = worker.evaluate_batch(pairs)

        # Interleave: absorb half, merge a sibling worker's drained
        # rows into the shared store, absorb the rest.
        sibling = EvalCache()
        sibling.put(entry(scenario="test", spec="sibling-cell"))
        _absorb_batch(parent, results[:4])
        parent.eval_cache.merge(sibling.drain_pending())
        _absorb_batch(parent, results[4:])

        # The bounded memos never exceeded their capacity...
        assert parent._area_cache.capacity == 2
        assert len(parent._area_cache) <= 2
        assert len(parent._latency_cache) <= 2
        # ...eviction really happened (8 distinct configs > capacity 2)...
        assert len(parent._area_cache) == 2
        # ...while the persistent store kept every row: the 8 absorbed
        # pairs plus the sibling's merged one.
        assert parent.eval_cache.get("test", "sibling-cell", "(1,)") is not None
        parent.eval_cache.flush()
        with sqlite3.connect(path) as conn:
            (count,) = conn.execute("SELECT COUNT(*) FROM evals").fetchone()
        assert count == 9

        # Evicted entries recompute (or cache-hit) bit-identically.
        for (spec, config), reference in zip(pairs, results):
            again = parent.evaluate(spec, config)
            assert again.metrics == reference.metrics
            assert again.reward == reference.reward
