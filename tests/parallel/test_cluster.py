"""Tests for the ledger-leased cluster backend and its lease protocol."""

import numpy as np
import pytest

from repro.core.scenarios import one_constraint, unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.search_study import make_bundle_evaluator
from repro.parallel import RunLedger
from repro.parallel.cluster import ClusterBackend, run_worker
from repro.parallel.ledger import LedgerError
from repro.search.random_search import RandomSearch
from repro.search.runner import RepeatJob, run_grid


@pytest.fixture
def ledger(tmp_path):
    return RunLedger(tmp_path / "cluster.ledger")


@pytest.fixture
def small_result(micro4_bundle):
    scenario = unconstrained(micro4_bundle.bounds)
    space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
    evaluator = make_bundle_evaluator(micro4_bundle, scenario)
    return RandomSearch(space, seed=11).run(evaluator, 15)


def two_job_grid(bundle):
    space = JointSearchSpace(cell_encoding=bundle.cell_encoding)
    jobs = []
    for name, factory in (("u", unconstrained), ("c1", one_constraint)):
        scenario = factory(bundle.bounds)
        jobs.append(
            RepeatJob(
                label=name,
                strategy_factory=lambda seed: RandomSearch(space, seed=seed),
                evaluator_factory=lambda sc=scenario: make_bundle_evaluator(
                    bundle, sc
                ),
                cache_scenario=name,
            )
        )
    return jobs


class TestLeaseProtocol:
    TASKS = [("a", 0), ("a", 1), ("b", 0)]

    def test_seed_is_idempotent(self, ledger):
        ledger.seed_task_leases(self.TASKS)
        ledger.seed_task_leases(self.TASKS)
        rows = ledger.task_lease_rows()
        assert [(r["label"], r["repeat"]) for r in rows] == sorted(self.TASKS)
        assert all(r["state"] == "pending" for r in rows)

    def test_claim_order_is_deterministic(self, ledger):
        ledger.seed_task_leases(self.TASKS)
        claims = [ledger.claim_task("w", 1, now=100.0, stale_after=10.0)
                  for _ in range(4)]
        assert claims == [("a", 0), ("a", 1), ("b", 0), None]

    def test_claim_records_holder(self, ledger):
        ledger.seed_task_leases(self.TASKS)
        ledger.claim_task("w1", 42, now=100.0, stale_after=10.0)
        row = ledger.task_lease_rows()[0]
        assert (row["state"], row["worker"], row["lease_pid"], row["claims"]) == (
            "leased", "w1", 42, 1
        )

    def test_fresh_lease_not_reclaimable(self, ledger):
        ledger.seed_task_leases(self.TASKS[:1])
        assert ledger.claim_task("w1", 1, now=100.0, stale_after=10.0) == ("a", 0)
        # Heartbeat is only 5s old: not runnable for anyone else.
        assert ledger.claim_task("w2", 2, now=105.0, stale_after=10.0) is None

    def test_stale_lease_reissued_and_claims_counted(self, ledger):
        ledger.seed_task_leases(self.TASKS[:1])
        ledger.claim_task("w1", 1, now=100.0, stale_after=10.0)
        assert ledger.claim_task("w2", 2, now=111.0, stale_after=10.0) == ("a", 0)
        row = ledger.task_lease_rows()[0]
        assert (row["worker"], row["claims"]) == ("w2", 2)

    def test_heartbeat_false_after_reissue(self, ledger):
        ledger.seed_task_leases(self.TASKS[:1])
        ledger.claim_task("w1", 1, now=100.0, stale_after=10.0)
        assert ledger.heartbeat_task("a", 0, "w1", now=101.0)
        ledger.claim_task("w2", 2, now=115.0, stale_after=10.0)
        assert not ledger.heartbeat_task("a", 0, "w1", now=116.0)
        assert ledger.heartbeat_task("a", 0, "w2", now=116.0)

    def test_straggler_record_refused(self, ledger, small_result):
        ledger.seed_task_leases(self.TASKS[:1])
        ledger.claim_task("w1", 1, now=100.0, stale_after=10.0)
        ledger.claim_task("w2", 2, now=111.0, stale_after=10.0)  # re-issue
        # w1 limps back after losing the lease: refused, nothing written.
        assert not ledger.record_done_leased("a", 0, "w1", small_result)
        assert ledger.load_result("a", 0) is None
        # The current holder's record lands, exactly once.
        assert ledger.record_done_leased("a", 0, "w2", small_result)
        assert ledger.load_result("a", 0) is not None
        assert ledger.task_lease_rows()[0]["state"] == "done"
        # ...and a later duplicate from anyone is refused too.
        assert not ledger.record_done_leased("a", 0, "w2", small_result)

    def test_done_task_never_reclaimed(self, ledger, small_result):
        ledger.seed_task_leases(self.TASKS[:1])
        ledger.claim_task("w1", 1, now=100.0, stale_after=10.0)
        ledger.record_done_leased("a", 0, "w1", small_result)
        assert ledger.claim_task("w2", 2, now=200.0, stale_after=10.0) is None

    def test_cluster_progress_counts(self, ledger, small_result):
        ledger.seed_task_leases(self.TASKS)
        ledger.claim_task("w1", 1, now=100.0, stale_after=10.0)
        ledger.record_done_leased("a", 0, "w1", small_result)
        ledger.claim_task("w1", 1, now=101.0, stale_after=10.0)
        assert ledger.cluster_progress() == {
            "pending": 1, "leased": 1, "done": 1, "total": 3
        }

    def test_seed_marks_out_of_band_completions_done(self, ledger, small_result):
        # A task recorded outside the lease protocol (a serial resume of
        # the same ledger) must still converge the lease accounting.
        ledger.seed_task_leases(self.TASKS[:1])
        ledger.record_done("a", 0, small_result)
        ledger.seed_task_leases([])
        assert ledger.task_lease_rows()[0]["state"] == "done"
        assert ledger.claim_task("w", 1, now=100.0, stale_after=10.0) is None


class TestRunWorker:
    def test_requires_file_backed_ledger(self, micro4_bundle):
        with pytest.raises(LedgerError, match="file-backed"):
            run_worker(
                two_job_grid(micro4_bundle), RunLedger(),
                num_steps=5, num_repeats=1,
            )

    def test_unknown_label_rejected(self, ledger, micro4_bundle):
        ledger.seed_task_leases([("ghost", 0)])
        with pytest.raises(LedgerError, match="ghost"):
            run_worker(
                two_job_grid(micro4_bundle), ledger,
                num_steps=5, num_repeats=1,
            )

    def test_single_worker_drains_the_grid(self, ledger, micro4_bundle):
        jobs = two_job_grid(micro4_bundle)
        recorded = run_worker(jobs, ledger, num_steps=10, num_repeats=2)
        assert recorded == 4
        progress = ledger.cluster_progress()
        assert progress["done"] == progress["total"] == 4

    def test_max_tasks_bounds_contribution(self, ledger, micro4_bundle):
        jobs = two_job_grid(micro4_bundle)
        assert run_worker(
            jobs, ledger, num_steps=10, num_repeats=2, max_tasks=1
        ) == 1
        assert ledger.cluster_progress()["done"] == 1

    def test_worker_results_feed_a_later_grid_run(
        self, ledger, micro4_bundle
    ):
        # Elastic join order: a worker may beat the coordinator to the
        # ledger.  Its recorded tasks must be served, not recomputed.
        jobs = two_job_grid(micro4_bundle)
        run_worker(jobs, ledger, num_steps=10, num_repeats=2)
        from_worker = run_grid(
            jobs, num_steps=10, num_repeats=2, backend="serial", ledger=ledger
        )
        fresh = run_grid(jobs, num_steps=10, num_repeats=2, backend="serial")
        for label in fresh:
            for ra, rb in zip(fresh[label].results, from_worker[label].results):
                assert np.array_equal(
                    ra.reward_trace(), rb.reward_trace(), equal_nan=True
                )


class TestClusterBackend:
    def test_requires_ledger(self, micro4_bundle):
        with pytest.raises(ValueError, match="file-backed ledger"):
            run_grid(
                two_job_grid(micro4_bundle),
                num_steps=5, num_repeats=1, backend="cluster",
            )

    def test_cluster_identical_to_serial(self, tmp_path, micro4_bundle):
        jobs = two_job_grid(micro4_bundle)
        serial = run_grid(jobs, num_steps=20, num_repeats=2, backend="serial")
        cluster = run_grid(
            jobs,
            num_steps=20,
            num_repeats=2,
            backend="cluster",
            workers=2,
            ledger=tmp_path / "c.ledger",
        )
        assert set(serial) == set(cluster)
        for label in serial:
            for ra, rb in zip(serial[label].results, cluster[label].results):
                assert np.array_equal(
                    ra.reward_trace(), rb.reward_trace(), equal_nan=True
                )
                assert (ra.best is None) == (rb.best is None)
                if ra.best is not None:
                    assert ra.best.reward == rb.best.reward
                    assert ra.best.spec.spec_hash() == rb.best.spec.spec_hash()

    def test_cluster_shares_eval_cache(self, tmp_path, micro4_bundle):
        from repro.parallel import EvalCache

        cache = EvalCache(tmp_path / "ec.sqlite")
        run_grid(
            two_job_grid(micro4_bundle),
            num_steps=15,
            num_repeats=2,
            backend="cluster",
            workers=2,
            ledger=tmp_path / "c.ledger",
            eval_cache=cache,
        )
        # Workers merged their deltas back into the shared store.
        assert len(cache) > 0

    def test_execution_recorded_in_ledger(self, tmp_path, micro4_bundle):
        path = tmp_path / "c.ledger"
        run_grid(
            two_job_grid(micro4_bundle),
            num_steps=10,
            num_repeats=2,
            backend="cluster",
            workers=2,
            ledger=path,
        )
        entries = RunLedger(path).executions()
        assert len(entries) == 1
        assert entries[0]["requested"] == entries[0]["effective"] == "cluster"
        assert entries[0]["workers"] == 2

    def test_process_fallback_recorded(self, tmp_path):
        # One task => the process backend degrades to serial, and the
        # ledger must say so (resumed/served studies report reality).
        from repro.core.evaluator import CodesignEvaluator
        from repro.core.reward import MetricBounds
        from repro.core.scenarios import unconstrained as uncon

        space = JointSearchSpace()
        jobs = [
            RepeatJob(
                label="solo",
                strategy_factory=lambda seed: RandomSearch(space, seed=seed),
                evaluator_factory=lambda: CodesignEvaluator.from_surrogate(
                    uncon(MetricBounds())
                ),
            )
        ]
        path = tmp_path / "solo.ledger"
        run_grid(
            jobs, num_steps=5, num_repeats=1,
            backend="process", workers=4, ledger=path,
        )
        entries = RunLedger(path).executions()
        assert entries[0]["requested"] == "process"
        assert entries[0]["effective"] == "serial"

    def test_resume_appends_second_execution(self, tmp_path, micro4_bundle):
        jobs = two_job_grid(micro4_bundle)
        path = tmp_path / "r.ledger"
        run_grid(jobs, num_steps=10, num_repeats=2, backend="serial", ledger=path)
        run_grid(
            jobs, num_steps=10, num_repeats=2,
            backend="cluster", workers=2, ledger=path,
        )
        requested = [e["requested"] for e in RunLedger(path).executions()]
        assert requested == ["serial", "cluster"]

    def test_describe_execution_reports_worker_split(self, tmp_path):
        backend = ClusterBackend()

        class FakeGrid:
            pending = [(0, 0), (0, 1), (1, 0)]
            workers = 2

        description = backend.describe_execution(FakeGrid())
        assert description["requested"] == "cluster"
        assert description["workers"] == 2
