"""Tests for the parallel repeat engine: process == serial, warm starts."""

import numpy as np
import pytest

from repro.core.scenarios import one_constraint, unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.search_study import make_bundle_evaluator, run_search_study
from repro.parallel import EvalCache, parallel_map
from repro.search.combined import CombinedSearch
from repro.search.random_search import RandomSearch
from repro.search.runner import RepeatJob, run_grid, run_repeats


@pytest.fixture
def repeat_kwargs(micro4_bundle):
    scenario = unconstrained(micro4_bundle.bounds)
    space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
    return dict(
        strategy_factory=lambda seed: CombinedSearch(space, seed=seed),
        evaluator_factory=lambda: make_bundle_evaluator(micro4_bundle, scenario),
        num_steps=40,
        num_repeats=3,
        master_seed=0,
    )


def assert_outcomes_identical(a, b):
    assert len(a.results) == len(b.results)
    for ra, rb in zip(a.results, b.results):
        assert np.array_equal(ra.reward_trace(), rb.reward_trace(), equal_nan=True)
        assert (ra.best is None) == (rb.best is None)
        if ra.best is not None:
            assert ra.best.step == rb.best.step
            assert ra.best.reward == rb.best.reward
            assert ra.best.spec.spec_hash() == rb.best.spec.spec_hash()


class TestParallelMap:
    def test_serial_and_process_agree(self):
        items = list(range(7))
        fn = lambda x: x * x  # noqa: E731
        assert parallel_map(fn, items, backend="serial") == [x * x for x in items]
        assert parallel_map(fn, items, workers=3, backend="process") == [
            x * x for x in items
        ]

    def test_order_preserved(self):
        out = parallel_map(lambda x: -x, list(range(20)), workers=4)
        assert out == [-x for x in range(20)]

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(lambda x: x, [1], backend="threads")

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(lambda x: x, [1, 2], workers=0)


class TestProcessEqualsSerial:
    def test_run_repeats_identical(self, repeat_kwargs):
        serial = run_repeats(**repeat_kwargs, backend="serial")
        process = run_repeats(**repeat_kwargs, backend="process", workers=4)
        assert_outcomes_identical(serial, process)

    def test_identical_with_shared_cache(self, repeat_kwargs, tmp_path):
        serial = run_repeats(**repeat_kwargs, backend="serial")
        process = run_repeats(
            **repeat_kwargs,
            backend="process",
            workers=2,
            eval_cache=tmp_path / "ec.sqlite",
        )
        assert_outcomes_identical(serial, process)

    def test_grid_parallelizes_independent_jobs(self, micro4_bundle):
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        jobs = []
        for name, factory in (("u", unconstrained), ("c1", one_constraint)):
            scenario = factory(micro4_bundle.bounds)
            jobs.append(
                RepeatJob(
                    label=name,
                    strategy_factory=lambda seed: RandomSearch(space, seed=seed),
                    evaluator_factory=lambda sc=scenario: make_bundle_evaluator(
                        micro4_bundle, sc
                    ),
                    cache_scenario=name,
                )
            )
        serial = run_grid(jobs, num_steps=25, num_repeats=2, backend="serial")
        process = run_grid(
            jobs, num_steps=25, num_repeats=2, backend="process", workers=4
        )
        assert set(serial) == set(process) == {"u", "c1"}
        for label in serial:
            assert_outcomes_identical(serial[label], process[label])

    def test_unknown_backend_rejected(self, repeat_kwargs):
        with pytest.raises(ValueError):
            run_repeats(**repeat_kwargs, backend="gpu")

    def test_zero_repeats_rejected(self, repeat_kwargs):
        kwargs = {**repeat_kwargs, "num_repeats": 0}
        with pytest.raises(ValueError):
            run_repeats(**kwargs)


class TestWarmStarts:
    def test_second_run_hits_cache(self, repeat_kwargs, tmp_path):
        path = tmp_path / "ec.sqlite"
        cold = EvalCache(path)
        first = run_repeats(**repeat_kwargs, eval_cache=cold)
        assert len(cold) > 0

        warm = EvalCache(path)
        second = run_repeats(**repeat_kwargs, eval_cache=warm)
        assert warm.stats["hit_rate"] > 0.0
        assert warm.stats["misses"] == 0  # identical run => fully warm
        assert_outcomes_identical(first, second)

    def test_workers_merge_rows_back(self, repeat_kwargs, tmp_path):
        cache = EvalCache(tmp_path / "ec.sqlite")
        run_repeats(**repeat_kwargs, backend="process", workers=2, eval_cache=cache)
        assert len(cache) > 0
        assert cache.stats["pending"] == 0  # merged and flushed

    def test_shared_evaluator_rows_still_merge(self, micro4_bundle, tmp_path):
        # A factory returning one shared evaluator (the documented serial
        # idiom) must not lose cache rows or stats in process mode.
        scenario = unconstrained(micro4_bundle.bounds)
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        shared = make_bundle_evaluator(micro4_bundle, scenario)
        shared_cache = EvalCache(tmp_path / "shared.sqlite")
        run_repeats(
            strategy_factory=lambda seed: RandomSearch(space, seed=seed),
            evaluator_factory=lambda: shared,
            num_steps=25,
            num_repeats=4,
            backend="process",
            workers=2,
            eval_cache=shared_cache,
        )
        fresh_cache = EvalCache(tmp_path / "fresh.sqlite")
        run_repeats(
            strategy_factory=lambda seed: RandomSearch(space, seed=seed),
            evaluator_factory=lambda: make_bundle_evaluator(micro4_bundle, scenario),
            num_steps=25,
            num_repeats=4,
            backend="process",
            workers=2,
            eval_cache=fresh_cache,
        )
        assert len(shared_cache) == len(fresh_cache) > 0
        assert shared_cache.hits + shared_cache.misses > 0

    def test_cache_path_accepted_directly(self, repeat_kwargs, tmp_path):
        path = tmp_path / "ec.sqlite"
        run_repeats(**repeat_kwargs, eval_cache=path)
        assert len(EvalCache(path)) > 0


class TestSearchStudyBackends:
    def test_study_process_equals_serial(self, micro4_bundle, tmp_path):
        from repro.experiments.common import Scale

        tiny = Scale(name="tiny", search_steps=20, num_repeats=2, fig7_target_scale=0.05)
        scenarios = {"unconstrained": unconstrained}
        serial = run_search_study(
            micro4_bundle, tiny, scenarios=scenarios, master_seed=3
        )
        process = run_search_study(
            micro4_bundle,
            tiny,
            scenarios=scenarios,
            master_seed=3,
            backend="process",
            workers=4,
            eval_cache=tmp_path / "ec.sqlite",
        )
        for scenario in serial.outcomes:
            for strategy in serial.outcomes[scenario]:
                assert_outcomes_identical(
                    serial.outcomes[scenario][strategy],
                    process.outcomes[scenario][strategy],
                )


class TestWorkerCacheForkGuard:
    """Regression: a factory closing over an evaluator with a live
    attached EvalCache must not leak the parent's sqlite connection
    into forked workers (same parent-pid guard as
    make_batch_evaluator.run_chunk)."""

    class _SpyCache(EvalCache):
        """Logs every get() as "pid tag" lines to a shared file."""

        def __init__(self, path, log_path):
            super().__init__(path)
            self.log_path = log_path
            self.tag = "parent-instance"

        def get(self, scenario, spec_hash, config_key):
            import os

            with open(self.log_path, "a") as log:
                log.write(f"{os.getpid()} {self.tag}\n")
            return super().get(scenario, spec_hash, config_key)

    def test_forked_workers_never_touch_parent_connection(
        self, micro4_bundle, tmp_path
    ):
        import os

        scenario = unconstrained(micro4_bundle.bounds)
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        log_path = tmp_path / "spy.log"
        spy = self._SpyCache(tmp_path / "spy.sqlite", log_path)
        shared = make_bundle_evaluator(micro4_bundle, scenario)
        shared.attach_eval_cache(spy, scenario="guard")

        outcome = run_repeats(
            strategy_factory=lambda seed: RandomSearch(space, seed=seed),
            evaluator_factory=lambda: shared,
            num_steps=20,
            num_repeats=4,
            backend="process",
            workers=2,
        )
        assert len(outcome.results) == 4

        parent_pid = str(os.getpid())
        # No log at all means no process ever touched the parent's
        # instance — the strongest pass (workers use their own views
        # and the parent evaluates nothing in process mode).
        lines = log_path.read_text().splitlines() if log_path.exists() else []
        foreign = [
            line for line in lines if line and line.split()[0] != parent_pid
        ]
        # Forked children opened their own read-only views; the
        # parent's instance (and its sqlite connection) stayed home.
        assert foreign == []

    def test_detached_workers_still_warm_start_from_inherited_path(
        self, micro4_bundle, tmp_path
    ):
        # The guard must fall back to a fresh read-only view of the
        # *inherited* cache's path — not drop caching entirely — and
        # the parent must persist the workers' new rows even though
        # run_grid itself was never handed an eval_cache.
        scenario = unconstrained(micro4_bundle.bounds)
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        store_path = tmp_path / "warm.sqlite"
        accuracy_log = tmp_path / "accuracy_calls.log"

        def make_shared():
            shared = make_bundle_evaluator(micro4_bundle, scenario)
            inner = shared.accuracy_fn

            def logging_accuracy(spec):
                with open(accuracy_log, "a") as log:  # fork-safe append
                    log.write("call\n")
                return inner(spec)

            shared.accuracy_fn = logging_accuracy
            shared.attach_eval_cache(EvalCache(store_path), scenario="warm")
            return shared

        def run_process(shared):
            return run_repeats(
                strategy_factory=lambda seed: RandomSearch(space, seed=seed),
                evaluator_factory=lambda: shared,
                num_steps=20,
                num_repeats=4,
                backend="process",
                workers=2,
            )

        cold = run_process(make_shared())
        # The workers' rows came home: the parent persisted their
        # deltas through a writable connection of its own.
        assert len(EvalCache(store_path)) > 0
        cold_calls = len(accuracy_log.read_text().splitlines())
        assert cold_calls > 0

        # A second (fresh-store-view) run must be served entirely from
        # the persisted rows — every task in every worker, not just the
        # first one, consults the read-only view.
        warm = run_process(make_shared())
        warm_calls = len(accuracy_log.read_text().splitlines()) - cold_calls
        assert warm_calls == 0
        assert_outcomes_identical(cold, warm)


class TestWorkerConnectionHygiene:
    def test_per_task_factory_caches_do_not_leak_fds(
        self, micro4_bundle, tmp_path
    ):
        # A factory that opens a fresh evaluator + EvalCache per task
        # must not grow a long-lived worker's open-fd count: sqlite
        # connections sit in reference cycles, so the worker has to
        # close them deterministically rather than trust refcounting.
        import os

        scenario = unconstrained(micro4_bundle.bounds)
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        store_path = tmp_path / "perfactory.sqlite"
        fd_log = tmp_path / "fds.log"

        def factory():
            evaluator = make_bundle_evaluator(micro4_bundle, scenario)
            evaluator.attach_eval_cache(EvalCache(store_path), scenario="fd")
            inner = evaluator.accuracy_fn

            def probing_accuracy(spec):
                with open(fd_log, "a") as log:
                    log.write(
                        f"{os.getpid()} {len(os.listdir('/proc/self/fd'))}\n"
                    )
                return inner(spec)

            evaluator.accuracy_fn = probing_accuracy
            return evaluator

        run_repeats(
            strategy_factory=lambda seed: RandomSearch(space, seed=seed),
            evaluator_factory=factory,
            num_steps=15,
            num_repeats=12,
            backend="process",
            workers=2,
        )
        per_pid: dict[str, list[int]] = {}
        for line in fd_log.read_text().splitlines():
            pid, fds = line.split()
            per_pid.setdefault(pid, []).append(int(fds))
        for pid, fds in per_pid.items():
            assert max(fds) - min(fds) <= 2, (
                f"worker {pid} fd count grew: {sorted(set(fds))}"
            )
        # ... and the per-task rows still reached the shared store.
        assert len(EvalCache(store_path)) > 0


class TestLedgerGrid:
    """run_grid + RunLedger: crash-safety and resume equivalence."""

    def grid_kwargs(self, micro4_bundle, accuracy_wrapper=None):
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        jobs = []
        for name, factory, strategy in (
            ("u/random", unconstrained, RandomSearch),
            ("u/combined", unconstrained, CombinedSearch),
        ):
            scenario = factory(micro4_bundle.bounds)

            def evaluator_factory(sc=scenario):
                evaluator = make_bundle_evaluator(micro4_bundle, sc)
                if accuracy_wrapper is not None:
                    evaluator.accuracy_fn = accuracy_wrapper(evaluator.accuracy_fn)
                return evaluator

            jobs.append(
                RepeatJob(
                    label=name,
                    strategy_factory=lambda seed, cls=strategy: cls(space, seed=seed),
                    evaluator_factory=evaluator_factory,
                )
            )
        return dict(jobs=jobs, num_steps=25, num_repeats=2, master_seed=1)

    def test_crashed_grid_resumes_bit_identical(self, micro4_bundle, tmp_path):
        reference = run_grid(**self.grid_kwargs(micro4_bundle))

        class Crash(Exception):
            pass

        calls = [0]

        def crash_after(n):
            def wrapper(inner):
                def accuracy_fn(spec):
                    calls[0] += 1
                    if calls[0] > n:
                        raise Crash()
                    return inner(spec)

                return accuracy_fn

            return wrapper

        ledger_path = tmp_path / "grid.ledger"
        # Each 25-step task asks for ~10 distinct accuracies (the rest
        # are memoized); 16 lets the first task finish and kills the
        # second mid-flight.
        with pytest.raises(Crash):
            run_grid(
                **self.grid_kwargs(micro4_bundle, accuracy_wrapper=crash_after(16)),
                ledger=ledger_path,
                checkpoint_every=2,
            )
        from repro.parallel import RunLedger

        progress = RunLedger(ledger_path).progress()
        assert progress["done"] >= 1  # the crash landed mid-grid
        assert progress["done"] < 4

        resumed = run_grid(
            **self.grid_kwargs(micro4_bundle),
            ledger=ledger_path,
            checkpoint_every=2,
        )
        assert set(resumed) == set(reference)
        for label in reference:
            assert_outcomes_identical(reference[label], resumed[label])

    def test_process_backend_records_and_resumes(self, micro4_bundle, tmp_path):
        reference = run_grid(**self.grid_kwargs(micro4_bundle))
        ledger_path = tmp_path / "grid.ledger"
        first = run_grid(
            **self.grid_kwargs(micro4_bundle),
            backend="process",
            workers=2,
            ledger=ledger_path,
        )
        from repro.parallel import RunLedger

        assert RunLedger(ledger_path).progress()["done"] == 4
        # A second invocation is served entirely from the ledger.
        resumed = run_grid(
            **self.grid_kwargs(
                micro4_bundle,
                accuracy_wrapper=lambda inner: pytest.fail,  # never evaluated
            ),
            backend="process",
            workers=2,
            ledger=ledger_path,
        )
        for label in reference:
            assert_outcomes_identical(reference[label], first[label])
            assert_outcomes_identical(reference[label], resumed[label])

    def test_in_memory_ledger_rejected_on_process_backend(self, micro4_bundle):
        from repro.parallel import RunLedger

        with pytest.raises(ValueError, match="in-memory"):
            run_grid(
                **self.grid_kwargs(micro4_bundle),
                backend="process",
                workers=2,
                ledger=RunLedger(),
            )

    def test_mismatched_run_configuration_rejected(self, micro4_bundle, tmp_path):
        from repro.parallel import LedgerError

        ledger_path = tmp_path / "grid.ledger"
        kwargs = self.grid_kwargs(micro4_bundle)
        run_grid(**kwargs, ledger=ledger_path)
        with pytest.raises(LedgerError):
            run_grid(**kwargs, batch_size=16, ledger=ledger_path)

    def test_duplicate_labels_rejected(self, micro4_bundle):
        kwargs = self.grid_kwargs(micro4_bundle)
        kwargs["jobs"][1] = RepeatJob(
            label=kwargs["jobs"][0].label,
            strategy_factory=kwargs["jobs"][1].strategy_factory,
            evaluator_factory=kwargs["jobs"][1].evaluator_factory,
        )
        with pytest.raises(ValueError, match="unique"):
            run_grid(**kwargs)


class TestLedgerScenarioPinning:
    def test_edited_scenario_definition_refused_on_resume(
        self, micro4_bundle, tmp_path
    ):
        # Same scenario *name*, different constraint definition: the
        # ledger must refuse instead of stitching incompatible rows.
        from repro.core.reward import Constraints, RewardConfig
        from repro.experiments.common import Scale
        from repro.parallel import LedgerError

        tiny = Scale(name="tiny", search_steps=10, num_repeats=1, fig7_target_scale=0.05)
        ledger_path = tmp_path / "study.ledger"

        def constrained(limit):
            def build(bounds):
                return RewardConfig(
                    name="custom",  # same name both times
                    constraints=Constraints(max_latency_ms=limit),
                    bounds=bounds,
                )

            return build

        run_search_study(
            micro4_bundle,
            tiny,
            scenarios={"custom": constrained(10.0)},
            ledger=ledger_path,
        )
        with pytest.raises(LedgerError):
            run_search_study(
                micro4_bundle,
                tiny,
                scenarios={"custom": constrained(20.0)},
                ledger=ledger_path,
            )


class TestWorkerSharedPostForkCache:
    def test_factory_shared_cache_survives_across_tasks(
        self, micro4_bundle, tmp_path
    ):
        # A factory that lazily opens ONE cache per worker process and
        # attaches it to a fresh evaluator per task (a natural
        # warm-rows-across-tasks pattern) must keep working: the
        # harness must not close a cache the factory still references.
        scenario = unconstrained(micro4_bundle.bounds)
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        store_path = tmp_path / "lazy.sqlite"
        holder: dict = {}

        def factory():
            import os

            if holder.get("pid") != os.getpid():
                holder["pid"] = os.getpid()
                holder["cache"] = EvalCache(store_path)
            evaluator = make_bundle_evaluator(micro4_bundle, scenario)
            evaluator.attach_eval_cache(holder["cache"], scenario="lazy")
            return evaluator

        outcome = run_repeats(
            strategy_factory=lambda seed: RandomSearch(space, seed=seed),
            evaluator_factory=factory,
            num_steps=15,
            num_repeats=6,
            backend="process",
            workers=2,
        )
        assert len(outcome.results) == 6
        reference = run_repeats(
            strategy_factory=lambda seed: RandomSearch(space, seed=seed),
            evaluator_factory=lambda: make_bundle_evaluator(micro4_bundle, scenario),
            num_steps=15,
            num_repeats=6,
            backend="serial",
        )
        assert_outcomes_identical(reference, outcome)
