"""Tests for the parallel repeat engine: process == serial, warm starts."""

import numpy as np
import pytest

from repro.core.scenarios import one_constraint, unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.search_study import make_bundle_evaluator, run_search_study
from repro.parallel import EvalCache, parallel_map
from repro.search.combined import CombinedSearch
from repro.search.random_search import RandomSearch
from repro.search.runner import RepeatJob, run_grid, run_repeats


@pytest.fixture
def repeat_kwargs(micro4_bundle):
    scenario = unconstrained(micro4_bundle.bounds)
    space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
    return dict(
        strategy_factory=lambda seed: CombinedSearch(space, seed=seed),
        evaluator_factory=lambda: make_bundle_evaluator(micro4_bundle, scenario),
        num_steps=40,
        num_repeats=3,
        master_seed=0,
    )


def assert_outcomes_identical(a, b):
    assert len(a.results) == len(b.results)
    for ra, rb in zip(a.results, b.results):
        assert np.array_equal(ra.reward_trace(), rb.reward_trace(), equal_nan=True)
        assert (ra.best is None) == (rb.best is None)
        if ra.best is not None:
            assert ra.best.step == rb.best.step
            assert ra.best.reward == rb.best.reward
            assert ra.best.spec.spec_hash() == rb.best.spec.spec_hash()


class TestParallelMap:
    def test_serial_and_process_agree(self):
        items = list(range(7))
        fn = lambda x: x * x  # noqa: E731
        assert parallel_map(fn, items, backend="serial") == [x * x for x in items]
        assert parallel_map(fn, items, workers=3, backend="process") == [
            x * x for x in items
        ]

    def test_order_preserved(self):
        out = parallel_map(lambda x: -x, list(range(20)), workers=4)
        assert out == [-x for x in range(20)]

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(lambda x: x, [1], backend="threads")

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(lambda x: x, [1, 2], workers=0)


class TestProcessEqualsSerial:
    def test_run_repeats_identical(self, repeat_kwargs):
        serial = run_repeats(**repeat_kwargs, backend="serial")
        process = run_repeats(**repeat_kwargs, backend="process", workers=4)
        assert_outcomes_identical(serial, process)

    def test_identical_with_shared_cache(self, repeat_kwargs, tmp_path):
        serial = run_repeats(**repeat_kwargs, backend="serial")
        process = run_repeats(
            **repeat_kwargs,
            backend="process",
            workers=2,
            eval_cache=tmp_path / "ec.sqlite",
        )
        assert_outcomes_identical(serial, process)

    def test_grid_parallelizes_independent_jobs(self, micro4_bundle):
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        jobs = []
        for name, factory in (("u", unconstrained), ("c1", one_constraint)):
            scenario = factory(micro4_bundle.bounds)
            jobs.append(
                RepeatJob(
                    label=name,
                    strategy_factory=lambda seed: RandomSearch(space, seed=seed),
                    evaluator_factory=lambda sc=scenario: make_bundle_evaluator(
                        micro4_bundle, sc
                    ),
                    cache_scenario=name,
                )
            )
        serial = run_grid(jobs, num_steps=25, num_repeats=2, backend="serial")
        process = run_grid(
            jobs, num_steps=25, num_repeats=2, backend="process", workers=4
        )
        assert set(serial) == set(process) == {"u", "c1"}
        for label in serial:
            assert_outcomes_identical(serial[label], process[label])

    def test_unknown_backend_rejected(self, repeat_kwargs):
        with pytest.raises(ValueError):
            run_repeats(**repeat_kwargs, backend="gpu")

    def test_zero_repeats_rejected(self, repeat_kwargs):
        kwargs = {**repeat_kwargs, "num_repeats": 0}
        with pytest.raises(ValueError):
            run_repeats(**kwargs)


class TestWarmStarts:
    def test_second_run_hits_cache(self, repeat_kwargs, tmp_path):
        path = tmp_path / "ec.sqlite"
        cold = EvalCache(path)
        first = run_repeats(**repeat_kwargs, eval_cache=cold)
        assert len(cold) > 0

        warm = EvalCache(path)
        second = run_repeats(**repeat_kwargs, eval_cache=warm)
        assert warm.stats["hit_rate"] > 0.0
        assert warm.stats["misses"] == 0  # identical run => fully warm
        assert_outcomes_identical(first, second)

    def test_workers_merge_rows_back(self, repeat_kwargs, tmp_path):
        cache = EvalCache(tmp_path / "ec.sqlite")
        run_repeats(**repeat_kwargs, backend="process", workers=2, eval_cache=cache)
        assert len(cache) > 0
        assert cache.stats["pending"] == 0  # merged and flushed

    def test_shared_evaluator_rows_still_merge(self, micro4_bundle, tmp_path):
        # A factory returning one shared evaluator (the documented serial
        # idiom) must not lose cache rows or stats in process mode.
        scenario = unconstrained(micro4_bundle.bounds)
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        shared = make_bundle_evaluator(micro4_bundle, scenario)
        shared_cache = EvalCache(tmp_path / "shared.sqlite")
        run_repeats(
            strategy_factory=lambda seed: RandomSearch(space, seed=seed),
            evaluator_factory=lambda: shared,
            num_steps=25,
            num_repeats=4,
            backend="process",
            workers=2,
            eval_cache=shared_cache,
        )
        fresh_cache = EvalCache(tmp_path / "fresh.sqlite")
        run_repeats(
            strategy_factory=lambda seed: RandomSearch(space, seed=seed),
            evaluator_factory=lambda: make_bundle_evaluator(micro4_bundle, scenario),
            num_steps=25,
            num_repeats=4,
            backend="process",
            workers=2,
            eval_cache=fresh_cache,
        )
        assert len(shared_cache) == len(fresh_cache) > 0
        assert shared_cache.hits + shared_cache.misses > 0

    def test_cache_path_accepted_directly(self, repeat_kwargs, tmp_path):
        path = tmp_path / "ec.sqlite"
        run_repeats(**repeat_kwargs, eval_cache=path)
        assert len(EvalCache(path)) > 0


class TestSearchStudyBackends:
    def test_study_process_equals_serial(self, micro4_bundle, tmp_path):
        from repro.experiments.common import Scale

        tiny = Scale(name="tiny", search_steps=20, num_repeats=2, fig7_target_scale=0.05)
        scenarios = {"unconstrained": unconstrained}
        serial = run_search_study(
            micro4_bundle, tiny, scenarios=scenarios, master_seed=3
        )
        process = run_search_study(
            micro4_bundle,
            tiny,
            scenarios=scenarios,
            master_seed=3,
            backend="process",
            workers=4,
            eval_cache=tmp_path / "ec.sqlite",
        )
        for scenario in serial.outcomes:
            for strategy in serial.outcomes[scenario]:
                assert_outcomes_identical(
                    serial.outcomes[scenario][strategy],
                    process.outcomes[scenario][strategy],
                )
