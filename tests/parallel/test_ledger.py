"""Tests for the crash-safe run ledger and its state serialization."""

import numpy as np
import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.core.archive import SearchArchive
from repro.core.metrics import Metrics
from repro.core.scenarios import unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.search_study import make_bundle_evaluator
from repro.nasbench.known_cells import resnet_cell
from repro.parallel import LedgerError, MemoryCheckpoint, RunLedger
from repro.parallel.ledger import decode_state, encode_state
from repro.search.random_search import RandomSearch


@pytest.fixture
def small_result(micro4_bundle):
    scenario = unconstrained(micro4_bundle.bounds)
    space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
    evaluator = make_bundle_evaluator(micro4_bundle, scenario)
    return RandomSearch(space, seed=11).run(evaluator, 15)


def roundtrip(obj):
    return decode_state(encode_state(obj))


class TestStateCodec:
    @pytest.mark.parametrize("dtype", ["float64", "float32", "int64", "int8"])
    def test_ndarray_bit_exact(self, rng, dtype):
        array = (rng.standard_normal((3, 5)) * 100).astype(dtype)
        back = roundtrip(array)
        assert back.dtype == array.dtype
        assert np.array_equal(back, array)

    def test_special_floats_survive(self):
        values = [0.1 + 0.2, float("nan"), float("inf"), float("-inf"), -0.0]
        back = roundtrip(values)
        assert np.array_equal(np.array(back), np.array(values), equal_nan=True)

    def test_rng_state_resumes_stream(self):
        gen = np.random.default_rng(123)
        gen.random(7)
        state = roundtrip(gen.bit_generator.state)
        expected = gen.random(5)
        fresh = np.random.default_rng(0)
        fresh.bit_generator.state = state
        assert np.array_equal(fresh.random(5), expected)

    def test_tuple_and_nonstring_dict_keys(self):
        obj = {2.0: ("a", 1), "nested": {5: [True, None]}}
        assert roundtrip(obj) == obj

    def test_spec_and_config_round_trip(self):
        spec = resnet_cell()
        config = AcceleratorConfig(pixel_par=64, pool_enable=True)
        back_spec, back_config = roundtrip((spec, config))
        assert back_spec.spec_hash() == spec.spec_hash()
        assert back_config == config

    def test_metrics_round_trip(self):
        metrics = Metrics(accuracy=93.21, latency_s=0.0421, area_mm2=186.0)
        assert roundtrip(metrics) == metrics

    def test_numpy_scalar_fields_survive(self):
        # A custom accuracy source may return numpy scalars; the codec
        # must coerce them instead of letting json.dumps raise.
        metrics = Metrics(
            accuracy=np.float32(93.25),
            latency_s=np.float64(0.0421),
            area_mm2=np.float64(186.0),
        )
        back = roundtrip(metrics)
        assert back.accuracy == float(np.float32(93.25))
        assert roundtrip(np.bool_(True)) is True
        assert roundtrip(np.int64(7)) == 7

    def test_archive_round_trip(self, small_result):
        back = roundtrip(small_result.archive)
        assert isinstance(back, SearchArchive)
        assert np.array_equal(back.reward_trace(), small_result.archive.reward_trace())
        for a, b in zip(back.entries, small_result.archive.entries):
            assert (a.step, a.phase, a.reward, a.feasible, a.valid) == (
                b.step, b.phase, b.reward, b.feasible, b.valid
            )
            assert a.config == b.config

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            encode_state(object())

    def test_literal_tag_key_round_trips(self):
        obj = {"__t__": "not-a-tag", "x": 1}
        assert roundtrip(obj) == obj


class TestRunLedger:
    def test_result_round_trip(self, tmp_path, small_result):
        path = tmp_path / "run.ledger"
        with RunLedger(path) as ledger:
            ledger.record_done("job", 0, small_result)
        with RunLedger(path) as warm:
            back = warm.load_result("job", 0)
        assert back is not None
        assert back.strategy == small_result.strategy
        assert back.scenario == small_result.scenario
        assert np.array_equal(back.reward_trace(), small_result.reward_trace())
        assert back.best.reward == small_result.best.reward
        assert back.best.spec.spec_hash() == small_result.best.spec.spec_hash()

    def test_missing_result_is_none(self, tmp_path):
        assert RunLedger(tmp_path / "x.ledger").load_result("job", 0) is None

    def test_begin_run_pins_configuration(self, tmp_path):
        config = {"num_steps": 10, "labels": ["a"]}
        path = tmp_path / "run.ledger"
        RunLedger(path).begin_run(config)
        RunLedger(path).begin_run(dict(config))  # identical: fine
        with pytest.raises(LedgerError):
            RunLedger(path).begin_run({"num_steps": 20, "labels": ["a"]})

    def test_checkpoint_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.ledger")
        handle = ledger.checkpoint("job", 3)
        assert handle.load() is None
        handle.save({"strategy": {"name": "random"}, "steps_done": 12})
        saved = ledger.checkpoint("job", 3).load()
        assert saved == {"strategy": {"name": "random"}, "steps_done": 12}
        assert ledger.progress()["checkpointed_steps"] == 12

    def test_record_done_clears_checkpoint(self, tmp_path, small_result):
        ledger = RunLedger(tmp_path / "run.ledger")
        ledger.save_checkpoint("job", 0, {"steps_done": 5})
        ledger.record_done("job", 0, small_result)
        assert ledger.load_checkpoint("job", 0) is None
        assert ledger.progress() == {
            "done": 1,
            "checkpointed": 0,
            "checkpointed_steps": 0,
        }

    def test_in_memory_ledger_works_in_process(self, small_result):
        ledger = RunLedger()
        ledger.record_done("job", 1, small_result)
        assert ledger.load_result("job", 1) is not None


class TestMemoryCheckpoint:
    def test_save_takes_a_snapshot(self):
        checkpoint = MemoryCheckpoint()
        state = {"strategy": {"name": "random", "values": [1, 2]}, "steps_done": 2}
        checkpoint.save(state)
        state["strategy"]["values"].append(3)  # later mutation must not leak
        assert checkpoint.load()["strategy"]["values"] == [1, 2]
        assert checkpoint.saves == 1
