"""Tests for the external cluster worker entry point (``repro worker``)."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.study import StudySpec, run_study
from repro.parallel import RunLedger
from repro.search.runner import run_repeats

SRC = Path(__file__).resolve().parents[2] / "src"


def tiny_spec(**execution) -> StudySpec:
    execution = {"num_steps": 20, "num_repeats": 2, **execution}
    return StudySpec(
        name="tiny-worker",
        strategies=({"name": "random"},),
        scenarios=("unconstrained",),
        evaluator={"source": "surrogate"},
        execution=execution,
    )


def worker_cmd(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro.parallel.worker", *args]


def run_worker_process(*args: str, timeout: float = 180.0):
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}:{env.get('PYTHONPATH', '')}"
    return subprocess.run(
        worker_cmd(*args),
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestWorkerEntryPoint:
    def test_requires_ledger_argument(self):
        proc = run_worker_process()
        assert proc.returncode == 2
        assert "--ledger" in proc.stderr

    def test_missing_pinned_config_fails_fast(self, tmp_path):
        ledger_path = tmp_path / "empty.ledger"
        RunLedger(ledger_path).close()
        proc = run_worker_process("--ledger", str(ledger_path))
        assert proc.returncode != 0
        assert "no pinned run configuration" in proc.stderr

    def test_non_spec_ledger_rejected(self, tmp_path, micro4_bundle):
        # A ledger from a raw run_grid (no pinned StudySpec) cannot
        # serve external workers: they rebuild jobs from the spec.
        from repro.core.scenarios import unconstrained
        from repro.core.search_space import JointSearchSpace
        from repro.experiments.search_study import make_bundle_evaluator
        from repro.search.random_search import RandomSearch

        ledger_path = tmp_path / "raw.ledger"
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        scenario = unconstrained(micro4_bundle.bounds)
        run_repeats(
            strategy_factory=lambda seed: RandomSearch(space, seed=seed),
            evaluator_factory=lambda: make_bundle_evaluator(
                micro4_bundle, scenario
            ),
            num_steps=5,
            num_repeats=1,
            ledger=ledger_path,
        )
        proc = run_worker_process("--ledger", str(ledger_path))
        assert proc.returncode != 0
        assert "study_spec" in proc.stderr

    def test_joins_finished_study_and_exits_clean(self, tmp_path):
        # The full rebuild path — pinned spec -> build_study -> label
        # check -> claim loop — against a study with nothing left to
        # do: the worker must converge immediately and exit 0.
        ledger_path = tmp_path / "study.ledger"
        run_study(tiny_spec(), ledger=ledger_path)
        proc = run_worker_process("--ledger", str(ledger_path))
        assert proc.returncode == 0, proc.stderr
        assert "recorded 0 task(s)" in proc.stdout

    def test_elastic_join_during_cluster_run(self, tmp_path):
        # A worker started *before* the coordinating run (--wait) joins
        # its lease pool; however the tasks are split, the study result
        # must equal the serial golden.
        ledger_path = tmp_path / "elastic.ledger"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{SRC}:{env.get('PYTHONPATH', '')}"
        worker = subprocess.Popen(
            worker_cmd("--ledger", str(ledger_path), "--wait", "120"),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            clustered = run_study(
                tiny_spec(backend="cluster", workers=1),
                ledger=ledger_path,
            )
            out, _ = worker.communicate(timeout=120)
            assert worker.returncode == 0, out
        finally:
            if worker.poll() is None:
                worker.kill()
                worker.communicate()

        serial = run_study(tiny_spec())
        assert set(clustered.outcomes) == set(serial.outcomes)
        for scenario, by_strategy in serial.outcomes.items():
            for strategy, outcome in by_strategy.items():
                other = clustered.outcomes[scenario][strategy]
                for ra, rb in zip(outcome.results, other.results):
                    assert np.array_equal(
                        ra.reward_trace(), rb.reward_trace(), equal_nan=True
                    )

    def test_repro_worker_subcommand_delegates(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{SRC}:{env.get('PYTHONPATH', '')}"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "worker", "--help"],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0
        assert proc.stdout.startswith("usage: repro worker")
