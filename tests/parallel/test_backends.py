"""Tests for the execution-backend protocol and registry."""

import pytest

from repro.parallel.pool import (
    BackendError,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    build_backend,
    get_backend,
    list_backends,
    parallel_map,
    register_backend,
    validate_backend_params,
)


class TestRegistry:
    def test_builtins_registered(self):
        assert list_backends() == ["cluster", "process", "serial"]

    def test_get_backend_resolves_builtins(self):
        assert get_backend("serial") is SerialBackend
        assert get_backend("process") is ProcessBackend
        assert get_backend("cluster").name == "cluster"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(BackendError, match="serial"):
            get_backend("gpu")

    def test_backend_error_is_value_error(self):
        # Callers that predate the registry catch ValueError.
        with pytest.raises(ValueError):
            get_backend("gpu")

    def test_register_as_decorator_and_reregister_noop(self):
        @register_backend
        class EchoBackend(ExecutionBackend):
            name = "echo-test"

            def map(self, fn, items, workers=None):
                return [fn(item) for item in items]

        try:
            assert "echo-test" in list_backends()
            register_backend(EchoBackend)  # same class again: no-op
            assert parallel_map(lambda x: x + 1, [1, 2], backend="echo-test") == [2, 3]
        finally:
            from repro.parallel import pool

            pool._REGISTRY.pop("echo-test", None)

    def test_conflicting_registration_rejected(self):
        class Impostor(ExecutionBackend):
            name = "serial"

        with pytest.raises(BackendError, match="already registered"):
            register_backend(Impostor)

    def test_unnamed_class_rejected(self):
        class Nameless(ExecutionBackend):
            pass

        with pytest.raises(BackendError, match="no name"):
            register_backend(Nameless)


class TestParamValidation:
    def test_no_params_always_fine(self):
        validate_backend_params("serial", None)
        validate_backend_params("process", {})

    def test_unknown_param_named(self):
        with pytest.raises(BackendError, match=r"\['bogus'\]"):
            validate_backend_params("cluster", {"bogus": 1})

    def test_allowed_params_listed_in_error(self):
        with pytest.raises(BackendError, match="stale_after"):
            validate_backend_params("cluster", {"nope": 1})

    def test_parameterless_backend_rejects_any_params(self):
        # serial/process define no constructor; object.__init__'s
        # *args/**kwargs must not make arbitrary params look valid.
        with pytest.raises(BackendError, match="no parameters"):
            validate_backend_params("serial", {"stale_after": 1.0})

    def test_non_mapping_rejected(self):
        with pytest.raises(BackendError, match="mapping"):
            validate_backend_params("cluster", [1, 2])

    def test_var_keyword_constructor_passes_through(self):
        class Flexible(ExecutionBackend):
            name = "flex-test"

            def __init__(self, **kwargs):
                self.kwargs = kwargs

        register_backend(Flexible)
        try:
            validate_backend_params("flex-test", {"anything": True})
            assert build_backend("flex-test", {"anything": True}).kwargs == {
                "anything": True
            }
        finally:
            from repro.parallel import pool

            pool._REGISTRY.pop("flex-test", None)


class TestBuildBackend:
    def test_builds_with_params(self):
        backend = build_backend("cluster", {"stale_after": 5.0})
        assert backend.stale_after == 5.0

    def test_defaults_without_params(self):
        assert build_backend("serial").name == "serial"

    def test_bad_value_wrapped_with_backend_name(self):
        with pytest.raises(BackendError, match="cluster"):
            build_backend("cluster", {"stale_after": -1.0})

    def test_heartbeat_must_beat_staleness(self):
        with pytest.raises(BackendError, match="heartbeat_every"):
            build_backend("cluster", {"heartbeat_every": 10.0, "stale_after": 5.0})


class TestProtocol:
    def test_default_describe_execution(self):
        assert SerialBackend().describe_execution(None) == {
            "requested": "serial",
            "effective": "serial",
        }

    def test_base_map_names_map_capable_backends(self):
        backend = ExecutionBackend()
        backend.name = "custom"
        with pytest.raises(BackendError, match="serial, process"):
            backend.map(lambda x: x, [1])

    def test_cluster_cannot_serve_parallel_map(self):
        with pytest.raises(BackendError, match="parallel_map"):
            parallel_map(lambda x: x, [1, 2], backend="cluster")

    def test_parallel_map_routes_through_registry(self):
        assert parallel_map(lambda x: x * 2, [1, 2, 3], backend="serial") == [2, 4, 6]
        assert parallel_map(lambda x: x * 2, [1, 2, 3], workers=2) == [2, 4, 6]
