"""Concurrency + corruption-recovery stress tests for the EvalCache store.

The store's contract under concurrency: any number of processes may
open one sqlite file and interleave buffered writes — flush
transactions serialize on sqlite's file lock (``busy_timeout``), every
row is an ``INSERT OR REPLACE`` of a pure function of its key, and so
no row is ever lost and the file never corrupts.
"""

from __future__ import annotations

import multiprocessing
import sqlite3

import pytest

from repro.parallel import CacheEntry, EvalCache

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method required",
)


def _hammer_disjoint(args) -> int:
    """Write ``rows`` rows under a per-writer namespace, many flushes."""
    path, writer, rows, flush_every = args
    cache = EvalCache(path)
    for i in range(rows):
        cache.put(
            CacheEntry(f"w{writer}", f"spec{i}", "(cfg)", 90.0 + writer, 0.01 * i, 100.0)
        )
        if (i + 1) % flush_every == 0:
            cache.flush()
    cache.flush()
    cache.close()
    return rows


def _hammer_shared(args) -> int:
    """Write the SAME key set from every process (INSERT OR REPLACE races)."""
    path, writer, rows = args
    cache = EvalCache(path)
    for i in range(rows):
        cache.put(CacheEntry("shared", f"spec{i}", "(cfg)", float(writer), None, None))
        cache.flush()
    cache.close()
    return rows


def _integrity_ok(path) -> bool:
    conn = sqlite3.connect(path)
    try:
        return conn.execute("PRAGMA integrity_check").fetchone()[0] == "ok"
    finally:
        conn.close()


@pytest.mark.slow
class TestConcurrentWriters:
    def test_disjoint_writers_lose_no_rows(self, tmp_path):
        """N processes, disjoint keys, interleaved flushes: all rows land."""
        path = tmp_path / "store.sqlite"
        n_procs, rows = 6, 120
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(n_procs) as pool:
            done = pool.map(
                _hammer_disjoint, [(path, w, rows, 7) for w in range(n_procs)]
            )
        assert done == [rows] * n_procs
        assert _integrity_ok(path)
        with EvalCache(path) as cache:
            assert len(cache) == n_procs * rows
            for w in range(n_procs):
                for i in range(0, rows, 17):
                    hit = cache.get(f"w{w}", f"spec{i}", "(cfg)")
                    assert hit is not None
                    assert hit.accuracy == 90.0 + w

    def test_colliding_writers_never_corrupt(self, tmp_path):
        """Same keys from every process: last-writer-wins, file stays sane."""
        path = tmp_path / "store.sqlite"
        n_procs, rows = 5, 40
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(n_procs) as pool:
            pool.map(_hammer_shared, [(path, w, rows) for w in range(n_procs)])
        assert _integrity_ok(path)
        with EvalCache(path) as cache:
            assert len(cache) == rows  # one row per key, none duplicated
            for i in range(rows):
                hit = cache.get("shared", f"spec{i}", "(cfg)")
                assert hit is not None
                assert hit.accuracy in {float(w) for w in range(n_procs)}

    def test_readers_during_writes_see_consistent_rows(self, tmp_path):
        """A read-only view opened mid-run serves committed rows only."""
        path = tmp_path / "store.sqlite"
        writer = EvalCache(path)
        writer.put(CacheEntry("s", "a", "(c)", 1.0, None, None))
        writer.flush()
        writer.put(CacheEntry("s", "b", "(c)", 2.0, None, None))  # uncommitted
        reader = EvalCache(path, read_only=True)
        assert reader.get("s", "a", "(c)") is not None
        assert reader.get("s", "b", "(c)") is None
        writer.flush()
        reader2 = EvalCache(path, read_only=True)
        assert reader2.get("s", "b", "(c)") is not None


class TestCorruptStoreQuarantine:
    """Direct regression tests for the quarantine path."""

    def test_corrupt_store_is_quarantined_with_bytes_preserved(self, tmp_path):
        path = tmp_path / "store.sqlite"
        garbage = b"not a sqlite file at all" * 10
        path.write_bytes(garbage)
        cache = EvalCache(path)
        assert cache.recovered
        quarantine = path.with_suffix(".sqlite.corrupt")
        assert quarantine.exists()
        assert quarantine.read_bytes() == garbage  # evidence preserved
        # The replacement store is a healthy, writable sqlite file.
        cache.put(CacheEntry("s", "a", "(c)", 1.0, None, None))
        assert cache.flush() == 1
        cache.close()
        assert _integrity_ok(path)
        warm = EvalCache(path)
        assert not warm.recovered
        assert warm.get("s", "a", "(c)") is not None

    def test_requarantine_replaces_stale_quarantine(self, tmp_path):
        path = tmp_path / "store.sqlite"
        quarantine = path.with_suffix(".sqlite.corrupt")
        quarantine.write_bytes(b"old quarantine")
        path.write_bytes(b"fresh corruption")
        cache = EvalCache(path)
        assert cache.recovered
        assert quarantine.read_bytes() == b"fresh corruption"
        cache.close()

    def test_read_only_view_never_touches_corrupt_file(self, tmp_path):
        path = tmp_path / "store.sqlite"
        garbage = b"broken"
        path.write_bytes(garbage)
        worker = EvalCache(path, read_only=True)
        assert worker.recovered
        assert worker.get("s", "a", "(c)") is None  # serves cold
        assert path.read_bytes() == garbage  # untouched
        assert not path.with_suffix(".sqlite.corrupt").exists()
