"""Tests for the training oracles (surrogate + real numpy trainer)."""

import numpy as np
import pytest

from repro.nasbench.known_cells import KNOWN_CELLS, googlenet_cell, resnet_cell
from repro.nasbench.model_spec import ModelSpec
from repro.nasbench.ops import CONV3X3, INPUT, OUTPUT
from repro.training.cache import CachedTrainer
from repro.training.numpy_trainer import TOY_SKELETON, NumpyTrainerOracle
from repro.training.oracle import TrainOutcome
from repro.training.surrogate_trainer import CIFAR100_ANCHORS, SurrogateCifar100Trainer


class TestSurrogateTrainer:
    def test_anchors_pinned_exactly(self):
        trainer = SurrogateCifar100Trainer()
        for name, target in CIFAR100_ANCHORS.items():
            assert trainer.mean_accuracy(KNOWN_CELLS[name]()) == pytest.approx(target)

    def test_anchor_order_matches_paper(self):
        trainer = SurrogateCifar100Trainer()
        cod1 = trainer.mean_accuracy(KNOWN_CELLS["cod1"]())
        resnet = trainer.mean_accuracy(resnet_cell())
        googlenet = trainer.mean_accuracy(googlenet_cell())
        cod2 = trainer.mean_accuracy(KNOWN_CELLS["cod2"]())
        assert cod1 > resnet > cod2 > googlenet

    def test_training_is_deterministic_per_cell(self):
        trainer = SurrogateCifar100Trainer(seed=5)
        a = trainer.train_and_score(resnet_cell()).accuracy
        b = trainer.train_and_score(resnet_cell()).accuracy
        assert a == b

    def test_noise_differs_across_seeds(self):
        a = SurrogateCifar100Trainer(seed=1).train_and_score(resnet_cell()).accuracy
        b = SurrogateCifar100Trainer(seed=2).train_and_score(resnet_cell()).accuracy
        assert a != b

    def test_gpu_hours_ledger(self):
        trainer = SurrogateCifar100Trainer()
        trainer.train_and_score(resnet_cell())
        trainer.train_and_score(googlenet_cell())
        assert trainer.num_trainings == 2
        assert trainer.total_gpu_hours > 0
        assert trainer.wall_clock_hours(48) == pytest.approx(trainer.total_gpu_hours / 48)

    def test_accuracy_within_bounds(self):
        trainer = SurrogateCifar100Trainer()
        acc = trainer.train_and_score(KNOWN_CELLS["cod1"]()).accuracy
        assert trainer.floor <= acc <= trainer.ceiling

    def test_invalid_spec_rejected(self):
        trainer = SurrogateCifar100Trainer()
        bad = ModelSpec(np.zeros((3, 3), dtype=int), (INPUT, CONV3X3, OUTPUT))
        with pytest.raises(ValueError):
            trainer.train_and_score(bad)
        assert trainer.accuracy_fn(bad) is None

    def test_wall_clock_validation(self):
        with pytest.raises(ValueError):
            SurrogateCifar100Trainer().wall_clock_hours(0)


class TestNumpyTrainer:
    def test_real_training_beats_chance(self):
        oracle = NumpyTrainerOracle(seed=0)
        outcome = oracle.train_and_score(resnet_cell())
        chance = 100.0 / TOY_SKELETON.num_classes
        assert outcome.accuracy > chance + 10
        assert outcome.gpu_hours > 0
        assert oracle.num_trainings == 1

    def test_deterministic(self):
        a = NumpyTrainerOracle(seed=3).train_and_score(KNOWN_CELLS["cod2"]()).accuracy
        b = NumpyTrainerOracle(seed=3).train_and_score(KNOWN_CELLS["cod2"]()).accuracy
        assert a == b

    def test_invalid_spec_rejected(self):
        oracle = NumpyTrainerOracle()
        bad = ModelSpec(np.zeros((3, 3), dtype=int), (INPUT, CONV3X3, OUTPUT))
        with pytest.raises(ValueError):
            oracle.train_and_score(bad)


class TestCache:
    def test_hit_avoids_retraining(self):
        inner = SurrogateCifar100Trainer()
        cached = CachedTrainer(inner)
        cached.train_and_score(resnet_cell())
        cached.train_and_score(resnet_cell())
        assert inner.num_trainings == 1
        assert cached.hits == 1
        assert cached.misses == 1
        assert cached.unique_cells_trained == 1

    def test_total_gpu_hours_counts_unique_only(self):
        cached = CachedTrainer(SurrogateCifar100Trainer())
        cached.train_and_score(resnet_cell())
        cached.train_and_score(resnet_cell())
        cached.train_and_score(googlenet_cell())
        assert cached.total_gpu_hours() == pytest.approx(cached.oracle.total_gpu_hours)

    def test_accuracy_fn_none_for_invalid(self):
        cached = CachedTrainer(SurrogateCifar100Trainer())
        bad = ModelSpec(np.zeros((3, 3), dtype=int), (INPUT, CONV3X3, OUTPUT))
        assert cached.accuracy_fn(bad) is None


class TestOutcome:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainOutcome(accuracy=120.0, gpu_hours=1.0)
        with pytest.raises(ValueError):
            TrainOutcome(accuracy=50.0, gpu_hours=-1.0)
