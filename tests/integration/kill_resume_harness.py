"""Subprocess harness for the kill -9 ledger-resume test.

Runs a small but real ``run_grid`` sweep — two strategies x two
repeats over the open surrogate space — against a ledger.  The test
launches this file as a subprocess, SIGKILLs the whole process group
mid-sweep once the ledger shows checkpoints, then calls :func:`run`
in-process to resume, and compares against an uninterrupted run.

``eval_delay`` slows each distinct accuracy query so the kill reliably
lands mid-search; delay never changes results (evaluation is a pure
function of the pair), so the undelayed resume must still be
bit-identical.
"""

from __future__ import annotations

import sys
import time

from repro.core.evaluator import CodesignEvaluator
from repro.core.reward import MetricBounds
from repro.core.scenarios import unconstrained
from repro.core.search_space import JointSearchSpace
from repro.search.combined import CombinedSearch
from repro.search.random_search import RandomSearch
from repro.search.runner import RepeatJob, run_grid

NUM_STEPS = 80
NUM_REPEATS = 2
MASTER_SEED = 5
CHECKPOINT_EVERY = 2


def build_jobs(eval_delay: float = 0.0) -> list[RepeatJob]:
    space = JointSearchSpace()
    jobs = []
    for label, strategy_cls in (
        ("u/random", RandomSearch),
        ("u/combined", CombinedSearch),
    ):

        def evaluator_factory(delay=eval_delay):
            evaluator = CodesignEvaluator.from_surrogate(
                unconstrained(MetricBounds())
            )
            if delay > 0:
                inner = evaluator.accuracy_fn

                def slow_accuracy(spec):
                    time.sleep(delay)
                    return inner(spec)

                evaluator.accuracy_fn = slow_accuracy
            return evaluator

        jobs.append(
            RepeatJob(
                label=label,
                strategy_factory=lambda seed, cls=strategy_cls: cls(space, seed=seed),
                evaluator_factory=evaluator_factory,
            )
        )
    return jobs


def run(ledger_path, backend: str, batch_size: int, eval_delay: float = 0.0):
    return run_grid(
        build_jobs(eval_delay),
        num_steps=NUM_STEPS,
        num_repeats=NUM_REPEATS,
        master_seed=MASTER_SEED,
        backend=backend,
        workers=2,
        batch_size=batch_size,
        ledger=ledger_path,
        checkpoint_every=CHECKPOINT_EVERY,
    )


if __name__ == "__main__":
    ledger, backend, batch = sys.argv[1], sys.argv[2], int(sys.argv[3])
    delay = float(sys.argv[4]) if len(sys.argv) > 4 else 0.0
    run(ledger, backend, batch, eval_delay=delay)
