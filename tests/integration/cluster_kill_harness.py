"""Subprocess harness for the kill-one-cluster-worker test.

Runs the kill-resume harness's two-strategy grid on the ``cluster``
backend with two forked local workers and aggressive lease timing, so
the test can SIGKILL *one* worker process mid-task and watch its lease
go stale, get re-issued, and the run still converge — while the
harness process itself survives to completion.

The coordinator's pid is printed first (stdout, one line) so the test
can tell local worker pids (``lease_pid`` in the ledger's lease rows)
apart from the coordinator's own mop-up loop.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from kill_resume_harness import (  # noqa: E402
    CHECKPOINT_EVERY,
    MASTER_SEED,
    NUM_REPEATS,
    NUM_STEPS,
    build_jobs,
)

from repro.parallel.cluster import ClusterBackend  # noqa: E402
from repro.search.runner import run_grid  # noqa: E402

# Fast re-issue so a killed worker's task comes back within the test's
# patience; heartbeats well inside the staleness window so live leases
# are never mistaken for abandoned ones.
STALE_AFTER = 2.0
HEARTBEAT_EVERY = 0.25
POLL_EVERY = 0.05


def run(ledger_path, eval_delay: float = 0.0):
    backend = ClusterBackend(
        stale_after=STALE_AFTER,
        heartbeat_every=HEARTBEAT_EVERY,
        poll_every=POLL_EVERY,
    )
    return run_grid(
        build_jobs(eval_delay),
        num_steps=NUM_STEPS,
        num_repeats=NUM_REPEATS,
        master_seed=MASTER_SEED,
        backend=backend,
        workers=2,
        ledger=ledger_path,
        checkpoint_every=CHECKPOINT_EVERY,
    )


if __name__ == "__main__":
    print(os.getpid(), flush=True)
    run(sys.argv[1], eval_delay=float(sys.argv[2]) if len(sys.argv) > 2 else 0.0)
