"""kill -9 a run_grid sweep mid-flight; resume must be bit-identical.

The real crash-safety contract, end to end: a subprocess runs a grid
against a ledger, the test SIGKILLs its whole process group at an
arbitrary moment (no clean shutdown, no atexit — exactly a power
cut), and resuming from the ledger in-process must reproduce the
uninterrupted outcomes bit for bit, for both backends.
"""

from __future__ import annotations

import importlib.util
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.parallel import RunLedger

HARNESS = Path(__file__).with_name("kill_resume_harness.py")
SRC = Path(__file__).resolve().parents[2] / "src"


def load_harness():
    spec = importlib.util.spec_from_file_location("kill_resume_harness", HARNESS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def checkpointed_steps(ledger_path: Path) -> int:
    """Total checkpointed steps, tolerating a mid-write lock."""
    try:
        with sqlite3.connect(ledger_path, timeout=0.1) as conn:
            row = conn.execute(
                "SELECT COALESCE(SUM(steps_done), 0) FROM checkpoints"
            ).fetchone()
        return int(row[0])
    except sqlite3.Error:
        return 0


def assert_grids_identical(a, b):
    assert set(a) == set(b)
    for label in a:
        assert len(a[label].results) == len(b[label].results)
        for ra, rb in zip(a[label].results, b[label].results):
            assert np.array_equal(
                ra.reward_trace(), rb.reward_trace(), equal_nan=True
            )
            for ea, eb in zip(ra.archive.entries, rb.archive.entries):
                assert (ea.step, ea.phase, ea.reward, ea.feasible) == (
                    eb.step, eb.phase, eb.reward, eb.feasible
                )
                assert ea.config == eb.config
                if ea.spec.valid:
                    assert ea.spec.spec_hash() == eb.spec.spec_hash()


@pytest.mark.parametrize(
    "backend,batch_size", [("serial", 1), ("process", 4)]
)
def test_sigkill_then_resume_is_bit_identical(tmp_path, backend, batch_size):
    harness = load_harness()
    ledger_path = tmp_path / "kill.ledger"
    stderr_path = tmp_path / "harness.stderr"

    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}:{env.get('PYTHONPATH', '')}"
    with open(stderr_path, "w") as stderr:
        proc = subprocess.Popen(
            [
                sys.executable,
                str(HARNESS),
                str(ledger_path),
                backend,
                str(batch_size),
                "0.003",  # slow evaluations so the kill lands mid-search
            ],
            env=env,
            start_new_session=True,  # killpg reaches pool workers too
            stdout=subprocess.DEVNULL,
            stderr=stderr,
        )
    try:
        deadline = time.time() + 120
        while time.time() < deadline:
            if proc.poll() is not None:
                break
            if ledger_path.exists() and checkpointed_steps(ledger_path) >= 8:
                break
            time.sleep(0.02)
        assert proc.poll() is None, (
            "harness exited before the kill "
            f"(rc={proc.returncode}): {stderr_path.read_text()[-2000:]}"
        )
        os.killpg(proc.pid, signal.SIGKILL)
        assert proc.wait(timeout=30) == -signal.SIGKILL
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

    progress = RunLedger(ledger_path).progress()
    total_tasks = 2 * harness.NUM_REPEATS
    assert progress["done"] < total_tasks, "grid finished before the kill"
    assert progress["done"] + progress["checkpointed"] > 0

    resumed = harness.run(ledger_path, backend, batch_size)
    assert RunLedger(ledger_path).progress()["done"] == total_tasks

    uninterrupted = harness.run(None, backend, batch_size)
    assert_grids_identical(uninterrupted, resumed)


def test_resume_without_rerunning_completed_tasks(tmp_path):
    """A finished ledger serves the whole grid without evaluating."""
    harness = load_harness()
    ledger_path = tmp_path / "done.ledger"
    first = harness.run(ledger_path, "serial", 1)

    t0 = time.time()
    second = harness.run(ledger_path, "serial", 1)
    elapsed = time.time() - t0

    assert_grids_identical(first, second)
    # Pure deserialization: far below one search's runtime.
    assert elapsed < 10.0
