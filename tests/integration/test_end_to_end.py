"""Integration tests across the whole stack."""

import numpy as np
import pytest

from repro.core.evaluator import CodesignEvaluator
from repro.core.pareto import product_space_pareto
from repro.core.scenarios import one_constraint, unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.search_study import make_bundle_evaluator
from repro.nasbench.skeleton import CIFAR10_SKELETON
from repro.search.combined import CombinedSearch
from repro.training.cache import CachedTrainer
from repro.training.numpy_trainer import TOY_SKELETON, NumpyTrainerOracle


class TestSearchVsEnumeration:
    """The search must be consistent with the enumerated ground truth."""

    def test_search_metrics_match_bundle_matrix(self, micro4_bundle):
        bundle = micro4_bundle
        scenario = unconstrained(bundle.bounds)
        space = JointSearchSpace(cell_encoding=bundle.cell_encoding)
        evaluator = make_bundle_evaluator(bundle, scenario)
        result = CombinedSearch(space, seed=0).run(evaluator, 50)
        rows = bundle.row_of_hash()
        for entry in result.archive.feasible_entries()[:20]:
            row = rows[entry.spec.spec_hash()]
            col = bundle.space.index_of(entry.config)
            assert entry.metrics.latency_ms == pytest.approx(
                bundle.latency_ms[row, col], rel=1e-9
            )
            assert entry.metrics.accuracy == pytest.approx(bundle.accuracy[row])

    def test_search_cannot_beat_pareto_front(self, micro4_bundle):
        """No discovered point may dominate the enumerated frontier."""
        bundle = micro4_bundle
        front = product_space_pareto(bundle.accuracy, bundle.area_mm2, bundle.latency_ms)
        scenario = one_constraint(bundle.bounds)
        space = JointSearchSpace(cell_encoding=bundle.cell_encoding)
        evaluator = make_bundle_evaluator(bundle, scenario)
        result = CombinedSearch(space, seed=3).run(evaluator, 200)
        best = result.best
        if best is None:
            pytest.skip("no feasible point found in this tiny run")
        m = best.metrics
        dominates_front = (
            (m.accuracy > front.accuracy)
            & (m.latency_ms < front.latency_ms)
            & (m.area_mm2 < front.area_mm2)
        )
        assert not dominates_front.any()

    def test_search_reaches_near_reference_reward(self, micro4_bundle):
        """Best found reward approaches the best enumerated reward."""
        from repro.core.reward import RewardFunction

        bundle = micro4_bundle
        scenario = unconstrained(bundle.bounds)
        fn = RewardFunction(scenario)
        rewards = fn.reward_array(
            np.broadcast_to(bundle.area_mm2, bundle.latency_ms.shape),
            bundle.latency_ms,
            np.broadcast_to(bundle.accuracy[:, None], bundle.latency_ms.shape),
        )
        best_possible = np.nanmax(rewards)
        space = JointSearchSpace(cell_encoding=bundle.cell_encoding)
        evaluator = make_bundle_evaluator(bundle, scenario)
        result = CombinedSearch(space, seed=5).run(evaluator, 400)
        assert result.best.reward >= best_possible - 0.05


class TestRealTrainerInTheLoop:
    def test_codesign_search_over_numpy_trainer(self):
        """The full paper loop with *real* training as the oracle."""
        oracle = CachedTrainer(
            NumpyTrainerOracle(
                seed=0,
                n_train=96,
                n_test=32,
            )
        )
        from repro.core.reward import MetricBounds

        bounds = MetricBounds(accuracy=(20.0, 100.0))
        evaluator = CodesignEvaluator(
            accuracy_fn=oracle.accuracy_fn,
            reward_config=unconstrained(bounds),
            skeleton=TOY_SKELETON,
        )
        space = JointSearchSpace()
        result = CombinedSearch(space, seed=2).run(evaluator, 6)
        assert len(result.archive) == 6
        assert oracle.unique_cells_trained >= 1
        feasible = result.archive.feasible_entries()
        if feasible:
            assert all(e.metrics.accuracy > 0 for e in feasible)


class TestDeterminism:
    def test_full_pipeline_reproducible(self, micro4_bundle):
        bundle = micro4_bundle
        scenario = unconstrained(bundle.bounds)
        space = JointSearchSpace(cell_encoding=bundle.cell_encoding)

        def run():
            evaluator = make_bundle_evaluator(bundle, scenario)
            return CombinedSearch(space, seed=9).run(evaluator, 40).reward_trace()

        assert np.array_equal(run(), run())
