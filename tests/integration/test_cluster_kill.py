"""SIGKILL one cluster worker mid-task; the run must still converge.

The cluster backend's elasticity contract, end to end: a harness
subprocess runs a grid with two forked local workers, the test
SIGKILLs exactly one of them while it holds a lease (the harness and
its other worker keep running), and the run must finish on its own —
the killed worker's lease goes stale, the task is re-issued and
resumed by a survivor, no (label, repeat) is recorded twice, and the
outcomes are bit-identical to a serial run of the same grid.
"""

from __future__ import annotations

import importlib.util
import multiprocessing
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.parallel import RunLedger

HARNESS = Path(__file__).with_name("cluster_kill_harness.py")
KILL_RESUME_HARNESS = Path(__file__).with_name("kill_resume_harness.py")
SRC = Path(__file__).resolve().parents[2] / "src"


def load_module(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.path.insert(0, str(path.parent))
    try:
        spec.loader.exec_module(module)
    finally:
        sys.path.remove(str(path.parent))
    return module


def lease_rows(ledger_path: Path) -> list[dict]:
    """Lease rows via a short-timeout connection (tolerates mid-write)."""
    try:
        with sqlite3.connect(ledger_path, timeout=0.1) as conn:
            rows = conn.execute(
                "SELECT label, repeat, state, worker, lease_pid, claims"
                " FROM task_leases ORDER BY label, repeat"
            ).fetchall()
    except sqlite3.Error:
        return []
    return [
        {"label": r[0], "repeat": r[1], "state": r[2], "worker": r[3],
         "lease_pid": r[4], "claims": r[5]}
        for r in rows
    ]


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="cluster local workers fork",
)
def test_sigkill_one_worker_lease_reissued_and_identical(tmp_path):
    ledger_path = tmp_path / "cluster.ledger"
    stderr_path = tmp_path / "harness.stderr"

    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}:{env.get('PYTHONPATH', '')}"
    with open(stderr_path, "w") as stderr:
        proc = subprocess.Popen(
            [sys.executable, str(HARNESS), str(ledger_path), "0.01"],
            env=env,
            start_new_session=True,
            stdout=subprocess.PIPE,
            stderr=stderr,
            text=True,
        )
    try:
        coordinator_pid = int(proc.stdout.readline())

        # Wait for a *local worker* (not the coordinator) to hold a
        # lease, then SIGKILL that worker only.
        killed_pid = None
        killed_task = None
        deadline = time.time() + 120
        while time.time() < deadline and killed_pid is None:
            if proc.poll() is not None:
                pytest.fail(
                    "harness exited before a worker could be killed "
                    f"(rc={proc.returncode}): {stderr_path.read_text()[-2000:]}"
                )
            for row in lease_rows(ledger_path):
                if (
                    row["state"] == "leased"
                    and row["lease_pid"] is not None
                    and row["lease_pid"] != coordinator_pid
                ):
                    killed_pid = int(row["lease_pid"])
                    killed_task = (row["label"], row["repeat"])
                    break
            else:
                time.sleep(0.02)
        assert killed_pid is not None, "no worker lease appeared in time"
        os.kill(killed_pid, signal.SIGKILL)

        # The harness itself was not killed: the surviving worker plus
        # the coordinator's mop-up loop must finish the whole grid.
        assert proc.wait(timeout=180) == 0, stderr_path.read_text()[-2000:]
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        proc.stdout.close()

    harness = load_module(HARNESS)
    ledger = RunLedger(ledger_path)

    # Every task done, each exactly once (one tasks row per lease row).
    rows = ledger.task_lease_rows()
    total = 2 * harness.NUM_REPEATS
    assert len(rows) == total
    assert all(row["state"] == "done" for row in rows)
    assert ledger.progress()["done"] == total

    # The killed worker's task was re-issued: claimed at least twice,
    # and finally recorded by someone other than the dead pid.
    killed_row = next(
        row for row in rows
        if (row["label"], row["repeat"]) == killed_task
    )
    assert killed_row["claims"] >= 2
    assert killed_row["lease_pid"] != killed_pid

    # Bit-identity with an uninterrupted serial run of the same grid.
    kill_resume = load_module(KILL_RESUME_HARNESS)
    serial = kill_resume.run(None, "serial", 1)
    for label, outcome in serial.items():
        for repeat, expected in enumerate(outcome.results):
            recovered = ledger.load_result(label, repeat)
            assert recovered is not None
            assert np.array_equal(
                expected.reward_trace(),
                recovered.reward_trace(),
                equal_nan=True,
            )
            assert (expected.best is None) == (recovered.best is None)
            if expected.best is not None:
                assert expected.best.reward == recovered.best.reward
                assert (
                    expected.best.spec.spec_hash()
                    == recovered.best.spec.spec_hash()
                )
