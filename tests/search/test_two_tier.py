"""Tests for two-tier surrogate-filtered search (repro.search.two_tier).

The contract under test: the surrogate tier only decides *which*
proposals get an exact evaluation — everything told, archived, cached
or ledgered is an exact result, bit for bit, and at
``exact_fraction=1.0`` the mode degenerates to the plain driver
exactly.
"""

import numpy as np
import pytest

from repro.core.scenarios import unconstrained
from repro.core.search_space import JointSearchSpace
from repro.core.study import ExecutionSpec
from repro.experiments.search_study import make_bundle_evaluator
from repro.hw.surrogate import SurrogatePlatform, surrogate_model_for
from repro.search.base import Proposal
from repro.search.combined import CombinedSearch
from repro.search.phase import PhaseSearch
from repro.search.separate import SeparateSearch
from repro.search.threshold_schedule import ThresholdScheduleSearch
from repro.search.two_tier import DEFAULT_EXACT_FRACTION, TwoTierFilter


@pytest.fixture
def space(micro4_bundle):
    return JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)


@pytest.fixture
def evaluator(micro4_bundle):
    return make_bundle_evaluator(micro4_bundle, unconstrained(micro4_bundle.bounds))


@pytest.fixture
def two_tier(evaluator):
    base = evaluator.platform
    model = surrogate_model_for(base, use_disk_cache=False)
    twin = SurrogatePlatform(base, model)
    return TwoTierFilter(evaluator.with_platform(twin), DEFAULT_EXACT_FRACTION)


class TestPolicyBatchSubset:
    def test_subset_slices_the_rollout_axis(self, space):
        search = CombinedSearch(space, seed=0)
        batch = search.trainer.sample_batch(np.random.default_rng(1), 5)
        sub = batch.subset([1, 3])
        assert len(sub) == 2
        assert np.array_equal(sub.actions, batch.actions[[1, 3]])
        assert np.array_equal(sub.log_probs, batch.log_probs[[1, 3]])
        assert np.array_equal(sub.entropies, batch.entropies[[1, 3]])
        # caches/hiddens/probs are per-TOKEN lists whose arrays carry
        # the rollout batch as the leading axis — the list length must
        # survive, only the arrays shrink.
        assert len(sub.probs) == len(batch.probs)
        for t in range(len(batch.probs)):
            assert np.array_equal(sub.probs[t], batch.probs[t][[1, 3]])
            assert np.array_equal(sub.hiddens[t], batch.hiddens[t][[1, 3]])
            assert np.array_equal(sub.caches[t].h_prev, batch.caches[t].h_prev[[1, 3]])
            assert np.array_equal(sub.caches[t].c, batch.caches[t].c[[1, 3]])

    def test_identity_subset_update_matches_full_update(self, space):
        a = CombinedSearch(space, seed=0)
        b = CombinedSearch(space, seed=0)
        batch_a = a.trainer.sample_batch(np.random.default_rng(2), 4)
        batch_b = b.trainer.sample_batch(np.random.default_rng(2), 4)
        rewards = [0.1, 0.9, 0.4, 0.7]
        a.trainer.update_batch(batch_a, rewards)
        b.trainer.update_batch(batch_b.subset(range(4)), rewards)
        next_a = a.trainer.sample_batch(np.random.default_rng(3), 4)
        next_b = b.trainer.sample_batch(np.random.default_rng(3), 4)
        assert np.array_equal(next_a.actions, next_b.actions)
        assert np.array_equal(next_a.log_probs, next_b.log_probs)

    def test_subset_is_tellable(self, space, evaluator):
        # The shape REINFORCE strategies depend on: updating with a
        # filtered batch and matching reward count must go through.
        search = CombinedSearch(space, seed=0)
        batch = search.trainer.sample_batch(np.random.default_rng(4), 6)
        search.trainer.update_batch(batch.subset([0, 2, 5]), [0.3, 0.6, 0.9])


class _FakeReward:
    def __init__(self, value):
        self.value = value


class _FakeResult:
    def __init__(self, value):
        self.reward = _FakeReward(value)


class _FakeEvaluator:
    def __init__(self, scores):
        self.scores = list(scores)

    def evaluate_batch(self, pairs):
        assert len(pairs) == len(self.scores)
        return [_FakeResult(v) for v in self.scores]


def _proposals(n):
    return [Proposal(spec=None, config=None) for _ in range(n)]


class TestFilter:
    def test_exact_fraction_validated(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="exact_fraction"):
                TwoTierFilter(_FakeEvaluator([]), bad)

    def test_ask_size_inflates_by_fraction(self):
        assert TwoTierFilter(_FakeEvaluator([]), 0.25).ask_size(4) == 16
        assert TwoTierFilter(_FakeEvaluator([]), 1.0).ask_size(4) == 4
        assert TwoTierFilter(_FakeEvaluator([]), 0.3).ask_size(4) == 14

    def test_select_returns_topk_in_sample_order(self):
        filt = TwoTierFilter(_FakeEvaluator([1.0, 5.0, 3.0, 4.0]), 0.5)
        assert filt.select(_proposals(4), 2) == [1, 3]

    def test_select_ties_break_toward_earlier_proposal(self):
        filt = TwoTierFilter(_FakeEvaluator([2.0, 2.0, 1.0]), 0.5)
        assert filt.select(_proposals(3), 1) == [0]

    def test_short_batch_skips_scoring(self):
        class Explodes:
            def evaluate_batch(self, pairs):
                pytest.fail("k >= len(proposals) must not score")

        filt = TwoTierFilter(Explodes(), 0.25)
        assert filt.select(_proposals(3), 3) == [0, 1, 2]
        assert filt.select(_proposals(3), 5) == [0, 1, 2]


class TestTwoTierSearch:
    @pytest.mark.parametrize(
        "strategy_cls, kwargs",
        [
            (CombinedSearch, {}),
            (PhaseSearch, {"cnn_phase_steps": 8, "hw_phase_steps": 4}),
            (SeparateSearch, {}),
        ],
        ids=["combined", "phase", "separate"],
    )
    def test_archived_results_are_exact(
        self, space, evaluator, two_tier, strategy_cls, kwargs
    ):
        result = strategy_cls(space, seed=0, **kwargs).run(
            evaluator, 12, batch_size=4, two_tier=two_tier
        )
        assert len(result.archive) == 12
        # The acceptance criterion: every archived reward is the exact
        # evaluator's answer for that point, bit for bit — the
        # surrogate never leaks into told/cached/ledgered results.
        for entry in result.archive.entries:
            fresh = evaluator.evaluate(entry.spec, entry.config)
            assert entry.reward == fresh.reward.value

    def test_exact_fraction_one_matches_plain_run(self, space, evaluator, two_tier):
        two_tier.exact_fraction = 1.0
        plain = CombinedSearch(space, seed=0).run(evaluator, 10, batch_size=5)
        tiered = CombinedSearch(space, seed=0).run(
            evaluator, 10, batch_size=5, two_tier=two_tier
        )
        assert np.array_equal(
            plain.archive.reward_trace(), tiered.archive.reward_trace()
        )

    def test_threshold_schedule_refuses_two_tier(self, space, evaluator, two_tier):
        with pytest.raises(ValueError, match="two-tier"):
            ThresholdScheduleSearch(space, seed=0).run(
                evaluator, 4, two_tier=two_tier
            )


class TestExecutionSpecSurrogate:
    def test_defaults_omitted_from_dict(self):
        # Ledger-pinned pre-feature spec dicts must stay byte-identical:
        # the new fields only appear when the mode is on.
        out = ExecutionSpec().to_dict()
        assert "surrogate" not in out
        assert "exact_fraction" not in out

    def test_round_trip_when_enabled(self):
        spec = ExecutionSpec(surrogate=True, exact_fraction=0.5)
        data = spec.to_dict()
        assert data["surrogate"] is True
        assert data["exact_fraction"] == 0.5
        assert ExecutionSpec.from_dict(data) == spec

    def test_exact_fraction_validated(self):
        with pytest.raises(Exception, match="exact_fraction"):
            ExecutionSpec(surrogate=True, exact_fraction=0.0)
        with pytest.raises(Exception, match="exact_fraction"):
            ExecutionSpec(surrogate=True, exact_fraction=1.5)
