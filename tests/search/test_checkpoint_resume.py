"""Checkpoint/resume equivalence: a crashed search, resumed from its
last checkpoint, must finish bit-identical to an uninterrupted run.

The crash is simulated by an evaluation layer that raises after a
fixed number of batches — exactly what a ``kill -9`` looks like to the
strategy (state persisted at the last batch boundary, everything since
lost).  Resume constructs a *fresh* strategy from the same factory and
seed, restores the checkpoint through the ledger serializer (so the
round-trip is part of the test), and replays to completion.  See
``tests/integration/test_kill_resume.py`` for the real-SIGKILL,
whole-grid version.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scenarios import unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.search_study import make_bundle_evaluator
from repro.parallel import MemoryCheckpoint
from repro.search.combined import CombinedSearch
from repro.search.evolution import EvolutionSearch
from repro.search.phase import PhaseSearch
from repro.search.random_search import RandomSearch
from repro.search.separate import SeparateSearch
from repro.search.threshold_schedule import ThresholdRung, ThresholdScheduleSearch

NUM_STEPS = 30

STRATEGY_FACTORIES = {
    "random": lambda space, seed: RandomSearch(space, seed=seed),
    "evolution": lambda space, seed: EvolutionSearch(
        space, seed=seed, population_size=8, tournament_size=3
    ),
    "combined": lambda space, seed: CombinedSearch(space, seed=seed),
    "separate": lambda space, seed: SeparateSearch(space, seed=seed, cnn_fraction=0.6),
    "phase": lambda space, seed: PhaseSearch(
        space, seed=seed, cnn_phase_steps=10, hw_phase_steps=5
    ),
}


class Crash(Exception):
    """Stands in for the power cord."""


def crashing_evaluate_fn(evaluator, crash_after_batches):
    calls = [0]

    def evaluate_fn(pairs):
        calls[0] += 1
        if calls[0] > crash_after_batches:
            raise Crash()
        return evaluator.evaluate_batch(pairs)

    return evaluate_fn


@pytest.fixture
def space(micro4_bundle):
    return JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)


@pytest.fixture
def make_evaluator(micro4_bundle):
    scenario = unconstrained(micro4_bundle.bounds)
    return lambda: make_bundle_evaluator(micro4_bundle, scenario)


def assert_results_identical(a, b):
    assert np.array_equal(a.reward_trace(), b.reward_trace(), equal_nan=True)
    assert len(a.archive) == len(b.archive)
    for ea, eb in zip(a.archive.entries, b.archive.entries):
        assert (ea.step, ea.phase, ea.reward, ea.feasible, ea.valid) == (
            eb.step, eb.phase, eb.reward, eb.feasible, eb.valid
        )
        assert ea.config == eb.config
        assert ea.spec.valid == eb.spec.valid
        if ea.spec.valid:
            assert ea.spec.spec_hash() == eb.spec.spec_hash()


class TestCrashResumeEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 16])
    @pytest.mark.parametrize("name", sorted(STRATEGY_FACTORIES))
    def test_resume_is_bit_identical(
        self, space, make_evaluator, name, batch_size
    ):
        factory = STRATEGY_FACTORIES[name]
        reference = factory(space, 7).run(
            make_evaluator(), NUM_STEPS, batch_size=batch_size
        )

        checkpoint = MemoryCheckpoint()
        crash_batch = max(1, 12 // batch_size)
        evaluator = make_evaluator()
        with pytest.raises(Crash):
            factory(space, 7).run(
                evaluator,
                NUM_STEPS,
                batch_size=batch_size,
                evaluate_fn=crashing_evaluate_fn(evaluator, crash_batch),
                checkpoint=checkpoint,
                checkpoint_every=1,
            )
        assert checkpoint.saves == crash_batch

        resumed = factory(space, 7).run(
            make_evaluator(),
            NUM_STEPS,
            batch_size=batch_size,
            checkpoint=checkpoint,
            checkpoint_every=1,
        )
        assert_results_identical(reference, resumed)

    @pytest.mark.parametrize("checkpoint_every", [3, 7])
    def test_sparse_checkpoints_replay_identically(
        self, space, make_evaluator, checkpoint_every
    ):
        """A coarse checkpoint cadence replays the lost batches exactly."""
        factory = STRATEGY_FACTORIES["combined"]
        reference = factory(space, 3).run(make_evaluator(), NUM_STEPS)
        checkpoint = MemoryCheckpoint()
        evaluator = make_evaluator()
        with pytest.raises(Crash):
            factory(space, 3).run(
                evaluator,
                NUM_STEPS,
                evaluate_fn=crashing_evaluate_fn(evaluator, 17),
                checkpoint=checkpoint,
                checkpoint_every=checkpoint_every,
            )
        resumed = factory(space, 3).run(
            make_evaluator(),
            NUM_STEPS,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
        )
        assert_results_identical(reference, resumed)

    def test_completed_checkpoint_short_circuits(self, space, make_evaluator):
        """Resuming a finished search replays nothing (0 evaluations)."""
        checkpoint = MemoryCheckpoint()
        reference = RandomSearch(space, seed=5).run(
            make_evaluator(), NUM_STEPS, checkpoint=checkpoint
        )
        evaluator = make_evaluator()
        resumed = RandomSearch(space, seed=5).run(
            evaluator, NUM_STEPS, checkpoint=checkpoint
        )
        assert evaluator.num_evaluations == 0
        assert_results_identical(reference, resumed)


class TestThresholdScheduleResume:
    RUNGS = [ThresholdRung(2.0, 3, 12), ThresholdRung(8.0, 3, 12)]

    def factory(self, space):
        return ThresholdScheduleSearch(space, seed=7, rungs=self.RUNGS)

    @pytest.mark.parametrize("batch_size", [1, 16])
    def test_resume_is_bit_identical(self, space, make_evaluator, batch_size):
        reference = self.factory(space).run(
            make_evaluator(), num_steps=20, batch_size=batch_size
        )

        checkpoint = MemoryCheckpoint()
        crashing = self.factory(space)
        updates = [0]
        inner = crashing.trainer.update_batch

        def crashing_update(batch, rewards):
            updates[0] += 1
            if updates[0] > max(1, 4 // batch_size):
                raise Crash()
            return inner(batch, rewards)

        crashing.trainer.update_batch = crashing_update
        with pytest.raises(Crash):
            crashing.run(
                make_evaluator(),
                num_steps=20,
                batch_size=batch_size,
                checkpoint=checkpoint,
                checkpoint_every=1,
            )
        assert checkpoint.saves > 0

        resumed = self.factory(space).run(
            make_evaluator(),
            num_steps=20,
            batch_size=batch_size,
            checkpoint=checkpoint,
            checkpoint_every=1,
        )
        assert_results_identical(reference, resumed)
        assert sorted(reference.extras["per_rung"]) == sorted(
            resumed.extras["per_rung"]
        )
        for threshold, rung_archive in reference.extras["per_rung"].items():
            assert np.array_equal(
                rung_archive.reward_trace(),
                resumed.extras["per_rung"][threshold].reward_trace(),
                equal_nan=True,
            )


class TestStateDictContract:
    def test_wrong_strategy_rejected(self, space):
        state = RandomSearch(space, seed=0).state_dict()
        with pytest.raises(ValueError, match="random"):
            CombinedSearch(space, seed=0).load_state_dict(state)

    def test_policy_shape_mismatch_rejected(self, space):
        a = CombinedSearch(space, seed=0, hidden_size=32)
        b = CombinedSearch(space, seed=0, hidden_size=64)
        with pytest.raises(ValueError):
            b.policy.load_state_dict(a.policy.state_dict())

    def test_mid_batch_checkpoint_rejected(self, space):
        strategy = CombinedSearch(space, seed=0)
        strategy.ask(2)
        with pytest.raises(RuntimeError, match="between ask and tell"):
            strategy.state_dict()

    def test_bad_checkpoint_every_rejected(self, space, make_evaluator):
        with pytest.raises(ValueError):
            RandomSearch(space, seed=0).run(
                make_evaluator(), 5, checkpoint_every=0
            )


class TestEvaluateFnValidation:
    """Satellite: a misbehaving batch evaluator must fail loudly."""

    @pytest.mark.parametrize("delta", [-1, 1])
    def test_length_mismatch_raises(self, space, make_evaluator, delta):
        evaluator = make_evaluator()

        def lying_evaluate_fn(pairs):
            results = evaluator.evaluate_batch(pairs)
            return results[:delta] if delta < 0 else results + results[:1]

        with pytest.raises(RuntimeError, match="results for"):
            RandomSearch(space, seed=0).run(
                evaluator, 10, batch_size=4, evaluate_fn=lying_evaluate_fn
            )


def test_duplicate_rung_thresholds_rejected(space):
    # per_rung archives are keyed by threshold, so a repeated value
    # would silently merge two rungs' entries.
    with pytest.raises(ValueError, match="unique"):
        ThresholdScheduleSearch(
            space,
            seed=0,
            rungs=[ThresholdRung(2.0, 3, 12), ThresholdRung(2.0, 5, 20)],
        )
