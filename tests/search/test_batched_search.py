"""Tests for the batched ask/tell driver and per-strategy batch semantics."""

import numpy as np
import pytest

from repro.core.scenarios import unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.search_study import make_bundle_evaluator
from repro.search.base import Proposal, SearchStrategy
from repro.search.combined import CombinedSearch
from repro.search.evolution import EvolutionSearch
from repro.search.phase import PhaseSearch
from repro.search.random_search import RandomSearch
from repro.search.runner import make_batch_evaluator, run_repeats
from repro.search.separate import SeparateSearch
from repro.search.threshold_schedule import ThresholdRung, ThresholdScheduleSearch


@pytest.fixture
def space(micro4_bundle):
    return JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)


@pytest.fixture
def evaluator(micro4_bundle):
    return make_bundle_evaluator(micro4_bundle, unconstrained(micro4_bundle.bounds))


class TestDriver:
    def test_rejects_bad_batch_size(self, space, evaluator):
        with pytest.raises(ValueError):
            RandomSearch(space, seed=0).run(evaluator, 10, batch_size=0)

    @pytest.mark.parametrize("batch_size", [1, 4, 7, 32])
    def test_step_budget_exact_for_any_batch_size(
        self, space, evaluator, batch_size
    ):
        result = RandomSearch(space, seed=0).run(evaluator, 50, batch_size=batch_size)
        assert len(result.archive) == 50

    def test_ask_counts_capped_by_remaining(self, space, evaluator):
        asked = []

        class Probe(RandomSearch):
            def ask(self, n):
                asked.append(n)
                return super().ask(n)

        Probe(space, seed=0).run(evaluator, 10, batch_size=4)
        assert asked == [4, 4, 2]

    def test_empty_ask_ends_search(self, space, evaluator):
        class Quits(SearchStrategy):
            name = "quits"

            def ask(self, n):
                if len(self.archive) >= 6:
                    return []
                actions = self.search_space.random_actions(self.rng)
                spec, config = self.search_space.decode(actions)
                return [Proposal(spec=spec, config=config)]

            def tell(self, proposals, results, indices=None):
                for r in results:
                    self.archive.record(r)

        result = Quits(space, seed=0).run(evaluator, 100, batch_size=3)
        assert len(result.archive) == 6

    def test_custom_evaluate_fn_is_used(self, space, evaluator):
        calls = []

        def spy(pairs):
            calls.append(len(pairs))
            return evaluator.evaluate_batch(pairs)

        RandomSearch(space, seed=0).run(evaluator, 12, batch_size=5, evaluate_fn=spy)
        assert calls == [5, 5, 2]

    def test_overlong_ask_is_an_error(self, space, evaluator):
        class TooMany(RandomSearch):
            def ask(self, n):
                return super().ask(n + 1)

        with pytest.raises(RuntimeError):
            TooMany(space, seed=0).run(evaluator, 4, batch_size=2)


class TestRandomBatchSemantics:
    def test_any_batch_size_is_bit_identical(self, space, micro4_bundle):
        """Random proposals ignore results: batching cannot change them."""
        scenario = unconstrained(micro4_bundle.bounds)
        traces = []
        for batch_size in (1, 7, 16):
            ev = make_bundle_evaluator(micro4_bundle, scenario)
            result = RandomSearch(space, seed=5).run(ev, 60, batch_size=batch_size)
            traces.append(result.reward_trace())
        assert np.array_equal(traces[0], traces[1], equal_nan=True)
        assert np.array_equal(traces[0], traces[2], equal_nan=True)


class TestEvolutionBatchSemantics:
    def test_generation_batches_keep_population_size(self, space, evaluator):
        strategy = EvolutionSearch(space, seed=0, population_size=8, tournament_size=3)
        strategy.run(evaluator, 40, batch_size=6)
        assert len(strategy.population) == 8

    def test_warmup_never_mixes_with_evolution(self, space, evaluator):
        strategy = EvolutionSearch(space, seed=0, population_size=8, tournament_size=3)
        result = strategy.run(evaluator, 30, batch_size=6)
        phases = [e.phase for e in result.archive.entries]
        assert phases[:8] == ["init"] * 8
        assert set(phases[8:]) == {"evolve"}

    def test_batched_run_records_every_step(self, space, evaluator):
        strategy = EvolutionSearch(space, seed=1, population_size=6, tournament_size=2)
        result = strategy.run(evaluator, 25, batch_size=4)
        assert len(result.archive) == 25


class TestReinforceBatchSemantics:
    def test_combined_one_update_per_batch(self, space, evaluator):
        strategy = CombinedSearch(space, seed=0)
        strategy.run(evaluator, 24, batch_size=8)
        assert strategy.trainer.num_updates == 3

    def test_combined_batched_still_learns_archive(self, space, evaluator):
        result = CombinedSearch(space, seed=0).run(evaluator, 32, batch_size=8)
        assert len(result.archive) == 32
        assert result.best is not None

    def test_phase_batches_never_cross_phase_boundaries(self, space, evaluator):
        strategy = PhaseSearch(space, seed=0, cnn_phase_steps=10, hw_phase_steps=5)
        result = strategy.run(evaluator, 40, batch_size=8)
        phases = [e.phase for e in result.archive.entries]
        # Contiguous runs per phase label, each exactly the phase budget.
        runs = []
        for p in phases:
            if runs and runs[-1][0] == p:
                runs[-1][1] += 1
            else:
                runs.append([p, 1])
        for label, length in runs[:-1]:
            assert length == (10 if label.startswith("cnn") else 5), runs

    def test_separate_stage_split_respected_when_batched(self, space, evaluator):
        strategy = SeparateSearch(space, seed=0, cnn_fraction=0.6)
        result = strategy.run(evaluator, 40, batch_size=7)
        cnn = [e for e in result.archive.entries if e.phase == "cnn-only"]
        hw = [e for e in result.archive.entries if e.phase == "hw-only"]
        assert len(cnn) == 24
        assert len(hw) == 16
        best_spec = result.extras["stage1_best"]
        assert all(e.spec.spec_hash() == best_spec.spec_hash() for e in hw if e.valid)

    def test_threshold_schedule_batched_matches_serial_at_batch1(
        self, space, micro4_bundle
    ):
        scenario_bounds = micro4_bundle.bounds
        rungs = [ThresholdRung(2.0, 5, 20), ThresholdRung(8.0, 5, 20)]

        def run(batch_size):
            ev = make_bundle_evaluator(
                micro4_bundle, unconstrained(scenario_bounds)
            )
            strategy = ThresholdScheduleSearch(
                space, seed=0, rungs=rungs, bounds=scenario_bounds
            )
            return strategy.run(ev, num_steps=30, batch_size=batch_size)

        a, b = run(1), run(1)
        assert np.array_equal(a.reward_trace(), b.reward_trace(), equal_nan=True)
        batched = run(4)  # documented: may overshoot targets per batch
        assert len(batched.archive) >= min(len(a.archive), 1)


class TestRunnerBatchPlumbing:
    def test_run_repeats_accepts_batch_size(self, space, micro4_bundle):
        scenario = unconstrained(micro4_bundle.bounds)
        outcome = run_repeats(
            strategy_factory=lambda seed: RandomSearch(space, seed=seed),
            evaluator_factory=lambda: make_bundle_evaluator(micro4_bundle, scenario),
            num_steps=20,
            num_repeats=2,
            batch_size=8,
        )
        assert all(len(r.archive) == 20 for r in outcome.results)

    def test_random_repeats_identical_across_batch_sizes(self, space, micro4_bundle):
        scenario = unconstrained(micro4_bundle.bounds)

        def run(batch_size):
            return run_repeats(
                strategy_factory=lambda seed: RandomSearch(space, seed=seed),
                evaluator_factory=lambda: make_bundle_evaluator(micro4_bundle, scenario),
                num_steps=15,
                num_repeats=2,
                batch_size=batch_size,
            )

        a, b = run(1), run(5)
        for ra, rb in zip(a.results, b.results):
            assert np.array_equal(ra.reward_trace(), rb.reward_trace(), equal_nan=True)


class TestMakeBatchEvaluator:
    def test_process_fanout_matches_in_process(self, space, micro4_bundle):
        scenario = unconstrained(micro4_bundle.bounds)
        rng = np.random.default_rng(0)
        pairs = [
            space.decode(space.random_actions(rng)) for _ in range(64)
        ]
        reference = make_bundle_evaluator(micro4_bundle, scenario).evaluate_batch(pairs)
        evaluator = make_bundle_evaluator(micro4_bundle, scenario)
        evaluate_fn = make_batch_evaluator(evaluator, workers=4, min_chunk=4)
        fanned = evaluate_fn(pairs)
        assert len(fanned) == len(reference)
        # The every-pair-counts contract holds across the pool boundary.
        assert evaluator.num_evaluations == len(pairs)
        for a, b in zip(fanned, reference):
            assert a.reward.value == b.reward.value
            assert a.reward.feasible == b.reward.feasible
            if a.metrics is None:
                assert b.metrics is None
            else:
                assert a.metrics.accuracy == b.metrics.accuracy
                assert a.metrics.latency_s == b.metrics.latency_s
                assert a.metrics.area_mm2 == b.metrics.area_mm2

    def test_parent_caches_absorb_worker_results(self, space, micro4_bundle, tmp_path):
        from repro.parallel import EvalCache

        scenario = unconstrained(micro4_bundle.bounds)
        rng = np.random.default_rng(1)
        pairs = [space.decode(space.random_actions(rng)) for _ in range(32)]
        evaluator = make_bundle_evaluator(micro4_bundle, scenario)
        cache = EvalCache(tmp_path / "store.sqlite")
        evaluator.attach_eval_cache(cache)
        evaluate_fn = make_batch_evaluator(evaluator, workers=4, min_chunk=4)
        evaluate_fn(pairs)
        cache.flush()
        assert evaluator.eval_cache is cache  # parent attachment untouched
        assert len(cache) > 0

    def test_small_batches_stay_in_process(self, space, micro4_bundle):
        scenario = unconstrained(micro4_bundle.bounds)
        rng = np.random.default_rng(2)
        pairs = [space.decode(space.random_actions(rng)) for _ in range(4)]
        evaluator = make_bundle_evaluator(micro4_bundle, scenario)
        evaluate_fn = make_batch_evaluator(evaluator, workers=8, min_chunk=8)
        results = evaluate_fn(pairs)
        assert len(results) == 4
