"""Tests for the strategy registry and from_params construction."""

import numpy as np
import pytest

from repro.core.scenarios import unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.search_study import make_bundle_evaluator
from repro.search.base import SearchStrategy
from repro.search.combined import CombinedSearch
from repro.search.evolution import EvolutionSearch
from repro.search.registry import (
    StrategyError,
    build_strategy,
    get_strategy,
    list_strategies,
    register_strategy,
    strategy_name_of,
    validate_strategy_params,
)
from repro.search.threshold_schedule import ThresholdRung, ThresholdScheduleSearch


class TestRegistry:
    def test_all_six_registered(self):
        assert set(list_strategies()) >= {
            "random",
            "evolution",
            "combined",
            "separate",
            "phase",
            "threshold-schedule",
        }

    def test_get_and_reverse_lookup(self):
        assert get_strategy("evolution") is EvolutionSearch
        assert strategy_name_of(EvolutionSearch) == "evolution"
        assert strategy_name_of(SearchStrategy) is None

    def test_unknown_name_actionable(self):
        with pytest.raises(StrategyError, match="registered:"):
            get_strategy("simulated-annealing")

    def test_reregistering_same_class_is_noop(self):
        register_strategy(EvolutionSearch)  # no raise

    def test_name_collision_refused(self):
        class Impostor(SearchStrategy):
            name = "evolution"

        with pytest.raises(StrategyError, match="already registered"):
            register_strategy(Impostor)

    def test_validate_params(self):
        validate_strategy_params("evolution", {"population_size": 3})
        with pytest.raises(StrategyError, match="mutation_rate"):
            validate_strategy_params("evolution", {"mutation_rate": 0.1})
        with pytest.raises(StrategyError, match="mapping"):
            validate_strategy_params("evolution", ["population_size"])


class TestFromParams:
    @pytest.mark.parametrize(
        "name,params",
        [
            ("random", {}),
            ("evolution", {"population_size": 5, "tournament_size": 2}),
            ("combined", {"hidden_size": 16}),
            ("separate", {"cnn_fraction": 0.5}),
            ("phase", {"cnn_phase_steps": 10, "hw_phase_steps": 5}),
            ("threshold-schedule", {"rungs": [[2.0, 2, 10]]}),
        ],
    )
    def test_each_strategy_constructible(self, name, params):
        strategy = build_strategy(name, 7, JointSearchSpace(), **params)
        assert strategy.name == name

    def test_seed_matches_direct_construction(self, micro4_bundle):
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        evaluator = make_bundle_evaluator(
            micro4_bundle, unconstrained(micro4_bundle.bounds)
        )
        direct = CombinedSearch(space, seed=11).run(evaluator, 15)
        via_registry = build_strategy("combined", 11, space).run(
            evaluator.with_reward(unconstrained(micro4_bundle.bounds)), 15
        )
        assert np.array_equal(
            direct.reward_trace(), via_registry.reward_trace(), equal_nan=True
        )

    def test_reinforce_config_dict_coerced(self):
        strategy = build_strategy(
            "combined", 0, reinforce_config={"learning_rate": 0.5}
        )
        assert strategy.trainer.config.learning_rate == 0.5

    def test_bad_reinforce_config_field(self):
        with pytest.raises(StrategyError, match="reinforce_config|learning"):
            build_strategy("combined", 0, reinforce_config={"lr": 0.5})

    def test_threshold_rung_coercion_forms(self):
        strategy = build_strategy(
            "threshold-schedule",
            0,
            rungs=[
                [2.0, 3, 12],
                {"threshold": 8.0, "target_valid_points": 3, "max_steps": 12},
                ThresholdRung(16.0, 3, 12),
            ],
        )
        assert [r.threshold for r in strategy.rungs] == [2.0, 8.0, 16.0]

    def test_threshold_bad_rung_shape(self):
        with pytest.raises(StrategyError, match="rung"):
            build_strategy("threshold-schedule", 0, rungs=[[2.0, 3]])

    def test_threshold_bounds_mapping(self):
        strategy = build_strategy(
            "threshold-schedule", 0, bounds={"accuracy": [10.0, 90.0]}
        )
        assert strategy.bounds.accuracy == (10.0, 90.0)
        assert isinstance(strategy, ThresholdScheduleSearch)

    def test_unknown_param_names_strategy(self):
        with pytest.raises(ValueError, match="'phase' got unknown parameter"):
            build_strategy("phase", 0, warmup=3)

    def test_bad_param_value_wrapped(self):
        with pytest.raises(StrategyError, match="cannot construct strategy 'evolution'"):
            build_strategy("evolution", 0, population_size=1)
