"""Tests for the regularized-evolution strategy."""

import numpy as np
import pytest

from repro.core.scenarios import unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.search_study import make_bundle_evaluator
from repro.search.evolution import EvolutionSearch
from repro.search.random_search import RandomSearch


@pytest.fixture
def space(micro4_bundle):
    return JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)


@pytest.fixture
def evaluator(micro4_bundle):
    return make_bundle_evaluator(micro4_bundle, unconstrained(micro4_bundle.bounds))


class TestEvolution:
    def test_runs_and_records(self, space, evaluator):
        strategy = EvolutionSearch(space, seed=0, population_size=10, tournament_size=3)
        result = strategy.run(evaluator, 50)
        assert len(result.archive) == 50
        assert result.strategy == "evolution"

    def test_phases_tagged(self, space, evaluator):
        strategy = EvolutionSearch(space, seed=0, population_size=10, tournament_size=3)
        result = strategy.run(evaluator, 30)
        phases = [e.phase for e in result.archive.entries]
        assert phases[:10] == ["init"] * 10
        assert set(phases[10:]) == {"evolve"}

    def test_mutation_changes_exactly_k_tokens(self, space, rng):
        strategy = EvolutionSearch(space, seed=1, mutations_per_child=1)
        actions = space.random_actions(rng)
        child = strategy._mutate(actions)
        assert sum(a != b for a, b in zip(actions, child)) == 1

    def test_deterministic(self, space, micro4_bundle):
        scenario = unconstrained(micro4_bundle.bounds)

        def run():
            evaluator = make_bundle_evaluator(micro4_bundle, scenario)
            strategy = EvolutionSearch(space, seed=4, population_size=8, tournament_size=3)
            return strategy.run(evaluator, 40).reward_trace()

        assert np.array_equal(run(), run())

    def test_validation(self, space):
        with pytest.raises(ValueError):
            EvolutionSearch(space, population_size=1)
        with pytest.raises(ValueError):
            EvolutionSearch(space, population_size=5, tournament_size=6)
        with pytest.raises(ValueError):
            EvolutionSearch(space, mutations_per_child=0)

    def test_short_budget_is_all_warmup(self, space, evaluator):
        strategy = EvolutionSearch(space, seed=0, population_size=20, tournament_size=5)
        result = strategy.run(evaluator, 12)
        assert len(result.archive) == 12

    def test_competitive_with_random(self, space, micro4_bundle):
        """Evolution exploits: best-found should match or beat random."""
        scenario = unconstrained(micro4_bundle.bounds)
        evo = EvolutionSearch(space, seed=7, population_size=20, tournament_size=5).run(
            make_bundle_evaluator(micro4_bundle, scenario), 250
        )
        rnd = RandomSearch(space, seed=7).run(
            make_bundle_evaluator(micro4_bundle, scenario), 250
        )
        assert evo.best.reward >= rnd.best.reward - 0.01
