"""Tests for the Section IV threshold-schedule search."""

import pytest

from repro.core.evaluator import CodesignEvaluator
from repro.core.scenarios import CIFAR100_THRESHOLD_SCHEDULE, cifar100_threshold
from repro.core.search_space import JointSearchSpace
from repro.experiments.fig7 import CIFAR100_BOUNDS
from repro.nasbench.skeleton import CIFAR100_SKELETON
from repro.search.threshold_schedule import (
    ThresholdRung,
    ThresholdScheduleSearch,
    default_rungs,
)
from repro.training.cache import CachedTrainer
from repro.training.surrogate_trainer import SurrogateCifar100Trainer


def make_evaluator():
    trainer = CachedTrainer(SurrogateCifar100Trainer())
    return CodesignEvaluator(
        accuracy_fn=trainer.accuracy_fn,
        reward_config=cifar100_threshold(2.0, CIFAR100_BOUNDS),
        skeleton=CIFAR100_SKELETON,
    )


class TestRungs:
    def test_default_schedule_matches_paper(self):
        rungs = default_rungs()
        assert tuple(r.threshold for r in rungs) == CIFAR100_THRESHOLD_SCHEDULE
        assert rungs[0].target_valid_points == 300
        assert rungs[-1].target_valid_points == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdRung(2.0, 0, 10)
        with pytest.raises(ValueError):
            ThresholdRung(2.0, 100, 50)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            default_rungs(thresholds=(1.0, 2.0), targets=(10,))


class TestSearch:
    @pytest.fixture
    def result(self):
        rungs = [ThresholdRung(2.0, 10, 40), ThresholdRung(16.0, 10, 40)]
        search = ThresholdScheduleSearch(
            JointSearchSpace(), seed=0, rungs=rungs, bounds=CIFAR100_BOUNDS
        )
        return search.run(make_evaluator())

    def test_visits_every_rung(self, result):
        assert set(result.extras["per_rung"]) == {2.0, 16.0}

    def test_rung_feasible_points_meet_constraint(self, result):
        for threshold, archive in result.extras["per_rung"].items():
            for entry in archive.feasible_entries():
                assert entry.metrics.perf_per_area >= threshold

    def test_top10_bounded(self, result):
        for entries in result.extras["top10"].values():
            assert len(entries) <= 10

    def test_phases_tagged_with_threshold(self, result):
        phases = {e.phase for e in result.archive.entries}
        assert "th-2" in phases and "th-16" in phases

    def test_best_over_rungs_is_max_accuracy(self, result):
        best = ThresholdScheduleSearch.best_over_rungs(result)
        if best is not None:
            for archive in result.extras["per_rung"].values():
                for entry in archive.feasible_entries():
                    assert best.metrics.accuracy >= entry.metrics.accuracy

    def test_step_cap_respected(self):
        rungs = [ThresholdRung(2.0, 1000, 1000)]
        search = ThresholdScheduleSearch(
            JointSearchSpace(), seed=0, rungs=rungs, bounds=CIFAR100_BOUNDS
        )
        result = search.run(make_evaluator(), num_steps=25)
        assert len(result.archive) == 25
