"""Equivalence suite: the ask/tell engine at batch size 1 reproduces the
legacy per-point search traces exactly.

The golden traces in ``tests/data/ask_tell_goldens.npz`` were generated
from the pre-refactor per-point loops (see
``tests/data/generate_ask_tell_goldens.py`` for provenance); every
(strategy, scenario, seed) cell must match them bit for bit — same
rewards, same visited (spec, config, phase) sequence, hence the same
RNG stream.

A second layer (no goldens needed) asserts that the batched
``evaluate_batch`` path and the per-point ``evaluator.evaluate`` path
agree exactly for every *registry* scenario, including the parametric
``perf-area>=N`` family the goldens don't cover.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.scenarios import PAPER_SCENARIOS, get_scenario, list_scenarios
from repro.core.search_space import JointSearchSpace
from repro.experiments.search_study import make_bundle_evaluator
from repro.search.combined import CombinedSearch
from repro.search.evolution import EvolutionSearch
from repro.search.phase import PhaseSearch
from repro.search.random_search import RandomSearch
from repro.search.separate import SeparateSearch

DATA_DIR = Path(__file__).resolve().parents[1] / "data"

NUM_STEPS = 40
SEEDS = (0, 1, 2)

#: Must stay in sync with tests/data/generate_ask_tell_goldens.py —
#: the goldens freeze the legacy behaviour of exactly these setups.
STRATEGY_FACTORIES = {
    "random": lambda space, seed: RandomSearch(space, seed=seed),
    "evolution": lambda space, seed: EvolutionSearch(
        space, seed=seed, population_size=8, tournament_size=3
    ),
    "combined": lambda space, seed: CombinedSearch(space, seed=seed),
    "separate": lambda space, seed: SeparateSearch(space, seed=seed, cnn_fraction=0.6),
    "phase": lambda space, seed: PhaseSearch(
        space, seed=seed, cnn_phase_steps=10, hw_phase_steps=5
    ),
}


def visit_digest(archive) -> str:
    """md5 over the visited (spec_hash, config_key, phase) sequence."""
    parts = []
    for e in archive.entries:
        spec_part = (
            e.spec.spec_hash() if e.spec is not None and e.spec.valid else "invalid"
        )
        parts.append(f"{spec_part}|{tuple(e.config.to_dict().values())}|{e.phase}")
    return hashlib.md5("\n".join(parts).encode()).hexdigest()


@pytest.fixture(scope="module")
def goldens():
    arrays = np.load(DATA_DIR / "ask_tell_goldens.npz")
    meta = json.loads((DATA_DIR / "ask_tell_goldens.json").read_text())
    assert meta["num_steps"] == NUM_STEPS and tuple(meta["seeds"]) == SEEDS
    return arrays, meta["digests"]


@pytest.fixture(scope="module")
def space(micro4_bundle):
    return JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)


@pytest.mark.slow
class TestLegacyGoldens:
    """Batch-size-1 runs are bit-identical to the pre-refactor loops."""

    @pytest.mark.parametrize("strategy_name", sorted(STRATEGY_FACTORIES))
    @pytest.mark.parametrize("scenario_name", sorted(PAPER_SCENARIOS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_trace_matches_golden(
        self, micro4_bundle, space, goldens, strategy_name, scenario_name, seed
    ):
        arrays, digests = goldens
        scenario = PAPER_SCENARIOS[scenario_name](micro4_bundle.bounds)
        evaluator = make_bundle_evaluator(micro4_bundle, scenario)
        strategy = STRATEGY_FACTORIES[strategy_name](space, seed)
        result = strategy.run(evaluator, NUM_STEPS, batch_size=1)
        key = f"{strategy_name}__{scenario_name}__{seed}"
        assert np.array_equal(
            result.reward_trace(), arrays[key], equal_nan=True
        ), "reward trace diverged from the legacy per-point loop"
        assert visit_digest(result.archive) == digests[key], (
            "visited (spec, config, phase) sequence diverged from the "
            "legacy per-point loop"
        )


class TestBatchPathAgreesWithPointwise:
    """evaluate_batch-driven runs equal evaluator.evaluate-driven runs.

    Covers every registry scenario (parametric threshold family
    included), so scenarios without goldens still get an exactness
    guarantee: the batch evaluation layer never changes a trace.
    """

    @pytest.mark.parametrize("strategy_name", sorted(STRATEGY_FACTORIES))
    @pytest.mark.parametrize("scenario_name", list_scenarios())
    def test_batch1_equals_pointwise_evaluate(
        self, micro4_bundle, space, strategy_name, scenario_name
    ):
        scenario = get_scenario(scenario_name, micro4_bundle.bounds)

        def run(evaluate_fn):
            evaluator = make_bundle_evaluator(micro4_bundle, scenario)
            strategy = STRATEGY_FACTORIES[strategy_name](space, seed=3)
            if evaluate_fn == "pointwise":
                fn = lambda pairs: [evaluator.evaluate(s, c) for s, c in pairs]
            else:
                fn = None  # the default: evaluator.evaluate_batch
            return strategy.run(evaluator, 15, batch_size=1, evaluate_fn=fn)

        batched = run(None)
        pointwise = run("pointwise")
        assert np.array_equal(
            batched.reward_trace(), pointwise.reward_trace(), equal_nan=True
        )
        assert visit_digest(batched.archive) == visit_digest(pointwise.archive)
