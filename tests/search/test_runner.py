"""Tests for the repeat-experiment harness."""

import numpy as np
import pytest

from repro.core.scenarios import unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.search_study import make_bundle_evaluator
from repro.parallel.ledger import RunLedger
from repro.search.random_search import RandomSearch
from repro.search.runner import (
    RepeatJob,
    make_batch_evaluator,
    mean_reward_trace,
    run_grid,
    run_repeats,
)


@pytest.fixture
def outcome(micro4_bundle):
    scenario = unconstrained(micro4_bundle.bounds)
    space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
    return run_repeats(
        strategy_factory=lambda seed: RandomSearch(space, seed=seed),
        evaluator_factory=lambda: make_bundle_evaluator(micro4_bundle, scenario),
        num_steps=30,
        num_repeats=3,
        master_seed=0,
    )


class TestRunRepeats:
    def test_result_count(self, outcome):
        assert len(outcome.results) == 3

    def test_repeats_use_different_seeds(self, outcome):
        traces = [r.reward_trace() for r in outcome.results]
        assert not np.array_equal(traces[0], traces[1])

    def test_best_entries_at_most_one_per_repeat(self, outcome):
        assert len(outcome.best_entries()) <= 3

    def test_hit_rate_in_unit_interval(self, outcome):
        assert 0.0 <= outcome.hit_rate() <= 1.0

    def test_mean_best_reward_finite(self, outcome):
        assert np.isfinite(outcome.mean_best_reward())

    def test_zero_repeats_rejected(self, micro4_bundle):
        scenario = unconstrained(micro4_bundle.bounds)
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        with pytest.raises(ValueError):
            run_repeats(
                strategy_factory=lambda seed: RandomSearch(space, seed=seed),
                evaluator_factory=lambda: make_bundle_evaluator(micro4_bundle, scenario),
                num_steps=5,
                num_repeats=0,
            )


class TestRepeatLabels:
    """run_repeats derives its ledger label from the factories."""

    def repeat_kwargs(self, micro4_bundle):
        scenario = unconstrained(micro4_bundle.bounds)
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        return dict(
            strategy_factory=lambda seed: RandomSearch(space, seed=seed),
            evaluator_factory=lambda: make_bundle_evaluator(
                micro4_bundle, scenario
            ),
            num_steps=10,
            num_repeats=2,
            master_seed=0,
        )

    def test_derived_label_is_scenario_slash_strategy(
        self, micro4_bundle, tmp_path
    ):
        ledger_path = tmp_path / "repeats.ledger"
        run_repeats(**self.repeat_kwargs(micro4_bundle), ledger=ledger_path)
        with RunLedger(ledger_path) as ledger:
            assert ledger.run_config()["labels"] == ["unconstrained/random"]
            assert ledger.load_result("unconstrained/random", 0) is not None
            assert ledger.load_result("job", 0) is None

    def test_rows_interchangeable_with_equivalent_run_grid(
        self, micro4_bundle, tmp_path
    ):
        kwargs = self.repeat_kwargs(micro4_bundle)
        ledger_path = tmp_path / "shared.ledger"
        first = run_repeats(**kwargs, ledger=ledger_path)
        # The equivalent single-job grid resumes from the same ledger:
        # every repeat loads instead of re-running.
        grid = run_grid(
            [
                RepeatJob(
                    "unconstrained/random",
                    kwargs["strategy_factory"],
                    kwargs["evaluator_factory"],
                )
            ],
            num_steps=kwargs["num_steps"],
            num_repeats=kwargs["num_repeats"],
            master_seed=kwargs["master_seed"],
            ledger=ledger_path,
        )["unconstrained/random"]
        for ours, theirs in zip(first.results, grid.results):
            assert np.array_equal(
                ours.reward_trace(), theirs.reward_trace(), equal_nan=True
            )

    def test_no_probe_without_ledger(self, micro4_bundle):
        kwargs = self.repeat_kwargs(micro4_bundle)
        calls = {"strategy": 0, "evaluator": 0}

        def counting_strategy(seed, inner=kwargs["strategy_factory"]):
            calls["strategy"] += 1
            return inner(seed)

        def counting_evaluator(inner=kwargs["evaluator_factory"]):
            calls["evaluator"] += 1
            return inner()

        kwargs["strategy_factory"] = counting_strategy
        kwargs["evaluator_factory"] = counting_evaluator
        run_repeats(**kwargs)
        # One call per repeat — the label probe only runs for ledgers.
        assert calls == {
            "strategy": kwargs["num_repeats"],
            "evaluator": kwargs["num_repeats"],
        }

    def test_explicit_label_wins(self, micro4_bundle, tmp_path):
        ledger_path = tmp_path / "named.ledger"
        run_repeats(
            **self.repeat_kwargs(micro4_bundle),
            ledger=ledger_path,
            label="my-experiment",
        )
        with RunLedger(ledger_path) as ledger:
            assert ledger.load_result("my-experiment", 0) is not None


class TestBatchEvaluatorChunkValidation:
    def test_short_worker_chunk_raises_instead_of_misordering(
        self, micro4_bundle
    ):
        scenario = unconstrained(micro4_bundle.bounds)
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        evaluator = make_bundle_evaluator(micro4_bundle, scenario)
        original = evaluator.evaluate_batch
        # A broken batch evaluator that silently drops the last result.
        evaluator.evaluate_batch = lambda pairs: original(pairs)[:-1]
        evaluate_fn = make_batch_evaluator(evaluator, workers=2, min_chunk=1)
        rng = np.random.default_rng(0)
        pairs = [space.decode(space.random_actions(rng)) for _ in range(8)]
        with pytest.raises(RuntimeError, match="worker chunk"):
            evaluate_fn(pairs)


class TestMeanTrace:
    def test_length_matches_steps(self, outcome):
        trace = mean_reward_trace(outcome, window=5)
        assert len(trace) == 30

    def test_smoothing_reduces_variance(self, outcome):
        raw = mean_reward_trace(outcome, window=1)
        smooth = mean_reward_trace(outcome, window=10)
        assert np.nanstd(np.diff(smooth)) <= np.nanstd(np.diff(raw)) + 1e-12

    def test_best_so_far_variant_monotone(self, outcome):
        trace = mean_reward_trace(outcome, window=1, best_so_far=True)
        valid = trace[~np.isnan(trace)]
        assert np.all(np.diff(valid) >= -1e-12)


class TestMeanTraceVectorization:
    """The cumulative-sum smoothing must match the historic O(n*window)
    nanmean loop on arbitrary NaN patterns and window sizes."""

    @staticmethod
    def reference_smooth(mean: np.ndarray, window: int) -> np.ndarray:
        smoothed = np.empty_like(mean)
        with np.errstate(invalid="ignore"):
            import warnings as _warnings

            with _warnings.catch_warnings():
                _warnings.simplefilter("ignore", RuntimeWarning)
                for i in range(len(mean)):
                    lo = max(0, i - window + 1)
                    smoothed[i] = np.nanmean(mean[lo: i + 1])
        return smoothed

    @staticmethod
    def fake_outcome(trace: np.ndarray):
        from repro.core.archive import SearchArchive
        from repro.search.base import SearchResult
        from repro.search.runner import RepeatOutcome

        class _Result(SearchResult):
            def __init__(self, values):
                self.values = np.asarray(values, dtype=np.float64)

            def reward_trace(self):
                return self.values

            def best_so_far_trace(self):
                return self.values

        outcome = RepeatOutcome(strategy="t", scenario="t")
        outcome.results.append(_Result(trace))
        return outcome

    @pytest.mark.filterwarnings("ignore:Mean of empty slice:RuntimeWarning")
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_on_random_nan_traces(self, seed):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(1, 120))
        trace = gen.standard_normal(n)
        # NaN prefixes (best-so-far style) and random interior NaNs.
        if gen.random() < 0.5:
            trace[: int(gen.integers(0, n))] = np.nan
        trace[gen.random(n) < 0.3] = np.nan
        window = int(gen.integers(1, n + 10))
        got = mean_reward_trace(self.fake_outcome(trace), window=window)
        want = self.reference_smooth(trace, window)
        assert np.array_equal(np.isnan(got), np.isnan(want))
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    @pytest.mark.filterwarnings("ignore:Mean of empty slice:RuntimeWarning")
    def test_all_nan_trace_stays_nan(self):
        got = mean_reward_trace(self.fake_outcome(np.full(9, np.nan)), window=4)
        assert np.all(np.isnan(got))

    def test_large_window_equals_running_mean(self):
        trace = np.arange(1.0, 11.0)
        got = mean_reward_trace(self.fake_outcome(trace), window=100)
        want = np.cumsum(trace) / np.arange(1, 11)
        np.testing.assert_allclose(got, want, rtol=1e-12)
