"""Tests for the repeat-experiment harness."""

import numpy as np
import pytest

from repro.core.scenarios import unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.search_study import make_bundle_evaluator
from repro.search.random_search import RandomSearch
from repro.search.runner import mean_reward_trace, run_repeats


@pytest.fixture
def outcome(micro4_bundle):
    scenario = unconstrained(micro4_bundle.bounds)
    space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
    return run_repeats(
        strategy_factory=lambda seed: RandomSearch(space, seed=seed),
        evaluator_factory=lambda: make_bundle_evaluator(micro4_bundle, scenario),
        num_steps=30,
        num_repeats=3,
        master_seed=0,
    )


class TestRunRepeats:
    def test_result_count(self, outcome):
        assert len(outcome.results) == 3

    def test_repeats_use_different_seeds(self, outcome):
        traces = [r.reward_trace() for r in outcome.results]
        assert not np.array_equal(traces[0], traces[1])

    def test_best_entries_at_most_one_per_repeat(self, outcome):
        assert len(outcome.best_entries()) <= 3

    def test_hit_rate_in_unit_interval(self, outcome):
        assert 0.0 <= outcome.hit_rate() <= 1.0

    def test_mean_best_reward_finite(self, outcome):
        assert np.isfinite(outcome.mean_best_reward())

    def test_zero_repeats_rejected(self, micro4_bundle):
        scenario = unconstrained(micro4_bundle.bounds)
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        with pytest.raises(ValueError):
            run_repeats(
                strategy_factory=lambda seed: RandomSearch(space, seed=seed),
                evaluator_factory=lambda: make_bundle_evaluator(micro4_bundle, scenario),
                num_steps=5,
                num_repeats=0,
            )


class TestMeanTrace:
    def test_length_matches_steps(self, outcome):
        trace = mean_reward_trace(outcome, window=5)
        assert len(trace) == 30

    def test_smoothing_reduces_variance(self, outcome):
        raw = mean_reward_trace(outcome, window=1)
        smooth = mean_reward_trace(outcome, window=10)
        assert np.nanstd(np.diff(smooth)) <= np.nanstd(np.diff(raw)) + 1e-12

    def test_best_so_far_variant_monotone(self, outcome):
        trace = mean_reward_trace(outcome, window=1, best_so_far=True)
        valid = trace[~np.isnan(trace)]
        assert np.all(np.diff(valid) >= -1e-12)
