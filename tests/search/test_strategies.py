"""Tests for the search strategies on the enumerated micro space."""

import numpy as np
import pytest

from repro.core.scenarios import one_constraint, unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.search_study import make_bundle_evaluator
from repro.search.combined import CombinedSearch
from repro.search.phase import PhaseSearch
from repro.search.random_search import RandomSearch
from repro.search.separate import SeparateSearch


@pytest.fixture
def space(micro4_bundle):
    return JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)


@pytest.fixture
def evaluator(micro4_bundle):
    return make_bundle_evaluator(micro4_bundle, unconstrained(micro4_bundle.bounds))


class TestCombined:
    def test_runs_and_records(self, space, evaluator):
        result = CombinedSearch(space, seed=0).run(evaluator, 60)
        assert len(result.archive) == 60
        assert result.strategy == "combined"
        assert result.scenario == "unconstrained"

    def test_deterministic_given_seed(self, space, micro4_bundle):
        scenario = unconstrained(micro4_bundle.bounds)
        a = CombinedSearch(space, seed=5).run(
            make_bundle_evaluator(micro4_bundle, scenario), 40
        )
        b = CombinedSearch(space, seed=5).run(
            make_bundle_evaluator(micro4_bundle, scenario), 40
        )
        assert np.array_equal(a.reward_trace(), b.reward_trace())

    def test_different_seeds_differ(self, space, micro4_bundle):
        scenario = unconstrained(micro4_bundle.bounds)
        a = CombinedSearch(space, seed=1).run(
            make_bundle_evaluator(micro4_bundle, scenario), 40
        )
        b = CombinedSearch(space, seed=2).run(
            make_bundle_evaluator(micro4_bundle, scenario), 40
        )
        assert not np.array_equal(a.reward_trace(), b.reward_trace())

    def test_best_is_feasible_max(self, space, evaluator):
        result = CombinedSearch(space, seed=0).run(evaluator, 80)
        best = result.best
        assert best is not None
        feasible_rewards = [e.reward for e in result.archive.feasible_entries()]
        assert best.reward == max(feasible_rewards)


class TestPhase:
    def test_phases_alternate(self, space, evaluator):
        strategy = PhaseSearch(space, seed=0, cnn_phase_steps=20, hw_phase_steps=5)
        result = strategy.run(evaluator, 60)
        phases = [e.phase for e in result.archive.entries]
        assert any(p.startswith("cnn") for p in phases)
        assert any(p.startswith("hw") for p in phases)

    def test_hw_frozen_during_cnn_phase(self, space, evaluator):
        strategy = PhaseSearch(space, seed=0, cnn_phase_steps=15, hw_phase_steps=5)
        result = strategy.run(evaluator, 15)
        configs = {
            tuple(e.config.to_dict().values())
            for e in result.archive.entries
            if e.phase.startswith("cnn")
        }
        assert len(configs) == 1

    def test_cnn_frozen_during_hw_phase(self, space, evaluator):
        strategy = PhaseSearch(space, seed=0, cnn_phase_steps=10, hw_phase_steps=10)
        result = strategy.run(evaluator, 20)
        hw_entries = [e for e in result.archive.entries if e.phase.startswith("hw")]
        specs = {e.spec.spec_hash() for e in hw_entries if e.valid}
        assert len(specs) <= 1

    def test_rejects_bad_phase_lengths(self, space):
        with pytest.raises(ValueError):
            PhaseSearch(space, cnn_phase_steps=0)


class TestSeparate:
    def test_stage_split(self, space, evaluator):
        strategy = SeparateSearch(space, seed=0, cnn_fraction=0.75)
        result = strategy.run(evaluator, 40)
        cnn = [e for e in result.archive.entries if e.phase == "cnn-only"]
        hw = [e for e in result.archive.entries if e.phase == "hw-only"]
        assert len(cnn) == 30
        assert len(hw) == 10

    def test_stage2_spec_is_stage1_best(self, space, evaluator):
        strategy = SeparateSearch(space, seed=0)
        result = strategy.run(evaluator, 40)
        best_spec = result.extras["stage1_best"]
        hw_entries = [e for e in result.archive.entries if e.phase == "hw-only"]
        assert all(e.spec.spec_hash() == best_spec.spec_hash() for e in hw_entries)

    def test_fraction_validation(self, space):
        with pytest.raises(ValueError):
            SeparateSearch(space, cnn_fraction=1.5)


class TestRandom:
    def test_runs(self, space, evaluator):
        result = RandomSearch(space, seed=0).run(evaluator, 50)
        assert len(result.archive) == 50
        assert result.strategy == "random"

    def test_explores_diverse_pairs(self, space, evaluator):
        result = RandomSearch(space, seed=0).run(evaluator, 50)
        assert result.archive.distinct_pairs() > 10


class TestControllerBeatsRandomEventually:
    def test_combined_at_least_matches_random(self, space, micro4_bundle):
        """RL should find an equal-or-better best point than random."""
        scenario = unconstrained(micro4_bundle.bounds)
        rl = CombinedSearch(space, seed=11).run(
            make_bundle_evaluator(micro4_bundle, scenario), 300
        )
        rnd = RandomSearch(space, seed=11).run(
            make_bundle_evaluator(micro4_bundle, scenario), 300
        )
        assert rl.best.reward >= rnd.best.reward - 0.01
