"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only exists
so that ``pip install -e .`` can fall back to the legacy (non-PEP-517)
editable install path on offline machines lacking ``bdist_wheel``.
"""

from setuptools import setup

setup()
